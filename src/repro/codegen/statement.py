"""Compile trigger statements to specialized straight-line Python functions.

One ``+=`` statement becomes one generated function ``_kernel(_values,
_scale)`` taking the event's field values (positionally, no bindings
dictionary) and the batch scale factor.  The function is specialized on
everything the compiler knows statically:

* **trigger variables** load positionally from the event tuple — only the
  ones the statement uses;
* **bound-key map/relation accesses** become direct probes of the backing
  :class:`~repro.runtime.maps.IndexedTable` primary dictionary, with the key
  :class:`~repro.core.rows.Row` built via the trusted sorted-items
  constructor (column sort order is resolved at compile time);
* **partially-bound accesses** probe the table's secondary hash index for the
  bound column subset and loop over the bucket; unbound variables read their
  values out of the key row by precomputed position;
* **scalar conditions and value factors** are lowered to plain Python and
  *hoisted* to the outermost point where their variables are bound, so a
  trigger-variable condition guards the whole statement instead of being
  re-checked per scanned row (hoisting is the one visible deviation from the
  interpreter: a hoisted condition is evaluated even when the scan it guards
  turns out empty, so an ill-typed comparison can raise where the
  interpreter's per-row evaluation would never have reached it — harmless
  for well-typed programs, which the SQL frontend guarantees);
* the **accumulated delta** multiplies factors in the statement's term order
  and applies the interpreter's exact zero-dropping and number-normalization
  rules, so compiled results are bit-identical to interpreted ones — values
  *and* types.

Beyond the straight-line ``+=`` fragment, the compiler also lowers the
statement classes that used to be interpreter-only:

* **nested scalar aggregates** — ``AggSum([], ...)`` bodies appearing as lift
  bodies or product factors compile to (a) a primary-dict probe for nullary
  map totals, (b) an **ordered range probe**
  (:meth:`~repro.runtime.maps.IndexedTable.range_sum`) when the body is a map
  atom guarded by a single ordering comparison on one key column — the
  ``SUM(volume) WHERE price > p`` shape of the financial queries — or (c) an
  inline scan loop reproducing the evaluator's aggregation chain exactly;
* **grouped aggregate factors** — ``AggSum([g], ...)`` inside a product
  compiles to a dict-accumulation loop followed by iteration, replicating
  GMR construction order;
* **``Exists``** factors compile to the plain-sum total-multiplicity loop
  (or a range probe) with the 0/1 gate;
* **``:=`` statements** compile to a kernel that evaluates the right-hand
  side into a plain dict (GMR ``+``-merge across sum terms, then the
  executor's plain grouping by target keys, both in enumeration order) and
  hands it to ``IndexedTable.replace`` — exactly ``execute_assign``.

Exact-equivalence notes (each mirrors a specific interpreter behaviour):

* a ``Value`` factor contributes ``normalize_number(v)`` and kills the row
  when ``is_zero(v)`` (the evaluator stores scalars into a GMR, which
  normalizes and drops zeros);
* a ``Lift`` over a value binds ``normalize_number(v)`` — coerced to the
  integer ``0`` when zero-ish — because the evaluator reads the lifted value
  back out of a GMR (``scalar_value() if inner else 0``);
* the final per-row delta is zero-checked *before* the batch scale is
  applied (the evaluator's result GMR drops zero rows before the executor
  scales them);
* a top-level ``AggSum`` groups deltas in enumeration order with the GMR's
  add/normalize/drop-on-zero rule before anything touches the target map,
  and a top-level ``Sum`` merges its terms' result rows the same way —
  reproducing the interpreter's floating-point addition order exactly;
* rows are enumerated in the same order as the evaluator (scan order of the
  primary dictionary / index buckets, product terms left to right), so
  same-key map additions happen in the same order.

The **capability check** is the compile attempt itself: any construct outside
the fragment — external functions (by policy), sums nested under products,
lifts over grouped aggregates, unbound value variables — raises
:class:`~repro.codegen.lowering.Unsupported` and the statement stays on the
interpreter.  Fallback is per statement, never per program, so one hard
statement does not slow down its siblings.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.agca.ast import (
    AggSum,
    Cmp,
    Exists,
    Expr,
    Lift,
    MapRef,
    Product,
    Relation,
    Sum,
    Value,
    VConst,
    VVar,
    free_variables,
    value_variables,
)
from repro.codegen.lowering import (
    SourceEnv,
    Unsupported,
    lower_condition,
    lower_value,
)
from repro.core.values import RANGE_OPS, flip_comparison
from repro.compiler.program import ASSIGN, INCREMENT, Statement, TriggerProgram
from repro.core.rows import Row
from repro.core.values import div, is_zero, normalize_number

_BASE_ENV = {
    "_is_zero": is_zero,
    "_norm": normalize_number,
    "_div": div,
    "_Row": Row.from_sorted_items,
    "_EMPTY_ROW": Row(),
    "_ONE_PASS": (0,),
}


class _Writer:
    """Tiny indented-source writer with an abort-statement stack.

    The abort statement is what "this row/term produces nothing" compiles to:
    ``return`` at statement top level, ``break`` inside a sum-term wrapper,
    ``continue`` inside a scan loop.
    """

    def __init__(self, abort: str) -> None:
        self.lines: list[str] = []
        self.depth = 0
        self._aborts = [abort]

    def line(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    @property
    def abort(self) -> str:
        return self._aborts[-1]

    def open_loop(self, header: str) -> None:
        self.line(header)
        self.depth += 1
        self._aborts.append("continue")

    def close_loops(self, count: int) -> None:
        for _ in range(count):
            self.depth -= 1
            self._aborts.pop()

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class StatementKernel:
    """One trigger statement compiled to a specialized Python function.

    ``source`` holds the generated code (kept for tests, ``describe()`` and
    debugging); :meth:`bind` links it against a concrete map store / database
    and returns the runnable ``(values, scale)`` closure.  The code object is
    compiled once and can be bound any number of times (each engine, and each
    restore, gets fresh bindings), so pickled engine state never needs to
    carry code objects — restoring recompiles/rebinds instead.
    """

    __slots__ = ("statement", "source", "_code", "_env", "_tables")

    def __init__(
        self,
        statement: Statement,
        source: str,
        env: dict[str, Any],
        tables: Sequence[tuple[str, str, str]],
    ) -> None:
        self.statement = statement
        self.source = source
        self._code = compile(source, f"<repro.codegen:{statement.target}>", "exec")
        self._env = env
        self._tables = tuple(tables)

    def bind(self, maps, database) -> Callable[[tuple, Any], None]:
        """Link the kernel against live tables; returns ``run(values, scale)``."""
        namespace = dict(self._env)
        for handle, kind, name in self._tables:
            namespace[handle] = (
                maps.table(name) if kind == "map" else database.table(name)
            )
        exec(self._code, namespace)
        return namespace["_kernel"]


# ---------------------------------------------------------------------------
# Term planning
# ---------------------------------------------------------------------------


class _AtomStep:
    """A relation/map access: probe when fully bound, scan loop otherwise."""

    __slots__ = (
        "kind", "name", "stored", "sorted_stored", "bound", "unbound",
        "eq_checks", "mult_local", "row_local", "index",
    )

    def __init__(self) -> None:
        self.bound: list[tuple[str, str]] = []          # (stored column, local)
        self.unbound: list[tuple[str, int, str]] = []   # (var, sorted pos, local)
        self.eq_checks: list[tuple[int, str]] = []      # (sorted pos, local)
        self.index: int = 0                             # 1-based atom index


class _ScalarStep:
    """A Value / Cmp / Lift / nested-aggregate step with its hoisting slot."""

    __slots__ = ("kind", "source", "local", "slot", "check_var", "spec")

    def __init__(self, kind: str, slot: int) -> None:
        self.kind = kind
        self.slot = slot
        self.source = ""
        self.local = ""
        self.check_var = ""
        self.spec: "_AggSpec | None" = None


class _AggSpec:
    """One nested scalar aggregate: how to compute it and where it lands.

    ``mode`` selects the lowering: ``"total"`` (nullary map: one primary-dict
    probe), ``"probe"`` (ordered range probe via ``IndexedTable.range_sum``,
    optionally after prelude lift bindings feeding the cutoff) or ``"loop"``
    (inline scan replicating the evaluator's aggregation chain over a
    sub-plan).  ``chain`` distinguishes the ``AggSum`` chain semantics from
    the plain summation of ``Exists``.
    """

    __slots__ = (
        "mode", "chain", "result", "handle", "probe", "column", "op",
        "cutoff", "prelude", "plan",
    )

    def __init__(self, result: str, chain: bool) -> None:
        self.mode = ""
        self.chain = chain
        self.result = result
        self.handle = ""
        self.probe = ""
        self.column = ""
        self.op = ""
        self.cutoff = ""
        self.prelude: list[tuple] = []
        self.plan: "_TermPlan | None" = None


class _GroupAggStep:
    """A grouped ``AggSum`` factor: accumulate a dict, then loop over it.

    Sits in the term plan's atom sequence (it opens a loop and binds the
    inner-produced group variables, exactly like a scan does).  ``unbound``
    mirrors the atom tuple shape so the hoisting logic treats the bound
    group variables uniformly.
    """

    __slots__ = ("plan", "group", "dict_local", "mult_local", "unbound", "key_sources")

    def __init__(self) -> None:
        self.plan: "_TermPlan | None" = None
        self.group: tuple[str, ...] = ()
        self.dict_local = ""
        self.mult_local = ""
        self.unbound: list[tuple[str, int, str]] = []  # (var, key tuple pos, local)
        self.key_sources: list[str] = []               # per group var, inner source


class _TermPlan:
    """Plan of one product term: ordered steps, factors, produced columns."""

    __slots__ = ("steps", "atoms", "factors", "colset", "names", "dead")

    def __init__(self) -> None:
        self.steps: list[Any] = []
        self.atoms: list[Any] = []
        self.factors: list[str] = []
        self.colset: set[str] = set()
        self.names: dict[str, str] = {}
        self.dead = False


class _StatementCompiler:
    """Plans and emits the kernel for one ``+=`` statement."""

    def __init__(self, statement: Statement, program: TriggerProgram) -> None:
        self.statement = statement
        self.program = program
        self.env = SourceEnv(_BASE_ENV)
        self.tables: list[tuple[str, str, str]] = []
        self._table_handles: dict[tuple[str, str], str] = {}
        self._probe_locals: dict[str, str] = {}
        self._maintained = program.requires_base_relations()
        self._trigger_locals: dict[str, str] = {}
        self._counter = 0
        self._preamble: list[str] = []

    # -- small allocators ---------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        name = f"_{prefix}{self._counter}"
        self._counter += 1
        return name

    def _trigger_local(self, var: str) -> str:
        local = self._trigger_locals.get(var)
        if local is None:
            index = self.statement.event.trigger_vars.index(var)
            local = f"_v{index}"
            self._trigger_locals[var] = local
            self._preamble.append(f"{local} = _values[{index}]")
        return local

    def _table_handle(self, kind: str, name: str) -> str:
        handle = self._table_handles.get((kind, name))
        if handle is None:
            handle = self._fresh("t")
            self._table_handles[(kind, name)] = handle
            self.tables.append((handle, kind, name))
        return handle

    def _probe_local(self, kind: str, name: str) -> str:
        """A kernel-preamble binding of the table's ``range_sum`` method."""
        handle = self._table_handle(kind, name)
        local = self._probe_locals.get(handle)
        if local is None:
            local = self._fresh("rs")
            self._probe_locals[handle] = local
            self._preamble.append(f"{local} = {handle}.range_sum")
        return local

    def _root_resolve(self, var: str) -> str | None:
        """Outermost scope: only the trigger variables are bound."""
        if var in self.statement.event.trigger_vars:
            return self._trigger_local(var)
        return None

    # -- planning -----------------------------------------------------------
    def compile(self) -> tuple[str, dict[str, Any], list[tuple[str, str, str]]]:
        statement = self.statement
        target_decl = self.program.maps.get(statement.target)
        if target_decl is None or len(target_decl.keys) != len(statement.target_keys):
            raise Unsupported("target map is not declared with matching arity")
        if statement.operation == ASSIGN:
            return self._compile_assign()
        if statement.operation != INCREMENT:
            raise Unsupported(f"unknown statement operation {statement.operation!r}")
        return self._compile_increment()

    def _compile_increment(self) -> tuple[str, dict[str, Any], list[tuple[str, str, str]]]:
        statement = self.statement
        expr: Expr = statement.expr
        group: tuple[str, ...] | None = None
        if isinstance(expr, AggSum):
            group = expr.group
            expr = expr.term
            if isinstance(expr, (AggSum, Sum)):
                raise Unsupported("nested aggregation under a top-level AggSum")
        terms = expr.terms if isinstance(expr, Sum) else (expr,)
        if not terms:
            raise Unsupported("empty sum")

        plans = [self._plan_term(term) for term in terms]
        live = [plan for plan in plans if not plan.dead]

        reads_target = statement.target in statement.reads_maps()
        if group is not None:
            mode = "group"
        elif len(terms) > 1:
            mode = "merge"
        elif reads_target:
            mode = "pending"
        else:
            mode = "direct"

        # Resolve target-key sources up front so unsupported statements fall
        # back before any source is emitted.
        self._check_key_sources(live, group, mode)

        writer = _Writer("return")
        writer.line("def _kernel(_values, _scale):")
        writer.depth += 1
        body_start = len(writer.lines)

        if mode == "merge":
            writer.line("_mrg = {}")
        elif mode == "group":
            writer.line("_grp = {}")
        elif mode == "pending":
            writer.line("_pend = []")
        target_handle = self._table_handle("map", statement.target)
        writer.line(f"_add = {target_handle}.add")

        colset_ids: dict[frozenset[str], int] = {}
        for plan in live:
            key = frozenset(plan.colset)
            colset_ids.setdefault(key, len(colset_ids))

        wrap = len(live) > 1
        for plan in plans:
            if plan.dead:
                continue
            if wrap:
                writer.open_loop("for _pass in _ONE_PASS:")
                writer._aborts[-1] = "break"
            self._emit_term(
                writer,
                plan,
                lambda w, p: self._emit_sink(w, p, mode, group, colset_ids),
            )
            if wrap:
                writer.close_loops(1)

        if mode == "merge":
            self._emit_merge_epilogue(writer, live, colset_ids)
        elif mode == "group":
            self._emit_group_epilogue(writer, live[0] if live else None, group)
        elif mode == "pending":
            writer.line("for _kr, _m in _pend:")
            writer.line("    _add(_kr, _m if _scale == 1 else _m * _scale)")

        # Trigger-variable loads go first; they were discovered during emission.
        header = writer.lines[:body_start]
        body = writer.lines[body_start:]
        lines = header + ["    " + line for line in self._preamble] + body
        source = "\n".join(lines) + "\n"
        return source, self.env.env, self.tables

    def _compile_assign(self) -> tuple[str, dict[str, Any], list[tuple[str, str, str]]]:
        """Compile a ``:=`` statement: evaluate, group plainly, ``replace``.

        The kernel mirrors ``TriggerExecutor.execute_assign`` step for step:
        the right-hand side is evaluated into result rows (a chain-merged
        dict across sum terms, exactly GMR ``+``), those rows are grouped by
        the target keys with *plain* addition in enumeration order, and the
        grouped entries replace the target table's contents.  Aborts inside a
        term only skip that term — an empty result still replaces (clears)
        the map, as the interpreter does.
        """
        statement = self.statement
        expr: Expr = statement.expr
        group: tuple[str, ...] | None = None
        if isinstance(expr, AggSum):
            group = expr.group
            expr = expr.term
            if isinstance(expr, (AggSum, Sum)):
                raise Unsupported("nested aggregation under a top-level AggSum")
        terms = expr.terms if isinstance(expr, Sum) else (expr,)
        if not terms:
            raise Unsupported("empty sum")

        plans = [self._plan_term(term) for term in terms]
        live = [plan for plan in plans if not plan.dead]

        if group is not None:
            mode = "group"
        elif len(terms) > 1:
            mode = "merge"
        else:
            mode = "single"
        self._check_key_sources(live, group, "group" if group is not None else mode)

        writer = _Writer("return")
        writer.line("def _kernel(_values, _scale):")
        writer.depth += 1
        body_start = len(writer.lines)

        target_handle = self._table_handle("map", statement.target)
        writer.line("_asn = {}")
        if mode == "merge":
            writer.line("_mrg = {}")
        elif mode == "group":
            writer.line("_grp = {}")

        colset_ids: dict[frozenset[str], int] = {}
        for plan in live:
            colset_ids.setdefault(frozenset(plan.colset), len(colset_ids))

        def single_sink(w, p):
            self._emit_acc(w, p)
            key = self._target_row_source(lambda k: self._value_for(k, p))
            w.line(f"_kr = {key}")
            w.line("_asn[_kr] = _asn.get(_kr, 0) + _acc")

        def merge_sink(w, p):
            self._emit_acc(w, p)
            colset = frozenset(p.colset)
            cs = colset_ids[colset]
            values = ", ".join(self._value_for(v, p) for v in sorted(colset))
            key = f"({cs}, {values},)" if colset else f"({cs},)"
            self._emit_dict_merge(w, "_mrg", key)

        def group_sink(w, p):
            self._emit_acc(w, p)
            gk = ", ".join(self._value_for(g, p) for g in group)
            gk = f"({gk},)" if group else "()"
            self._emit_dict_merge(w, "_grp", gk)

        sink = {"single": single_sink, "merge": merge_sink, "group": group_sink}[mode]
        for plan in plans:
            if plan.dead:
                continue
            # Always scope term aborts: a dead term must still reach replace.
            writer.open_loop("for _pass in _ONE_PASS:")
            writer._aborts[-1] = "break"
            self._emit_term(writer, plan, sink)
            writer.close_loops(1)

        if mode == "merge":
            self._emit_assign_merge_epilogue(writer, live, colset_ids)
        elif mode == "group":
            self._emit_assign_group_epilogue(writer, live[0] if live else None, group)
        writer.line(f"{target_handle}.replace(_asn.items())")

        header = writer.lines[:body_start]
        body = writer.lines[body_start:]
        lines = header + ["    " + line for line in self._preamble] + body
        source = "\n".join(lines) + "\n"
        return source, self.env.env, self.tables

    def _emit_assign_merge_epilogue(self, writer, plans, colset_ids) -> None:
        """Plain-group the chain-merged sum rows by the target keys."""
        by_id: dict[int, frozenset[str]] = {}
        for plan in plans:
            colset = frozenset(plan.colset)
            by_id[colset_ids[colset]] = colset
        writer.line("for _bk, _m in _mrg.items():")
        writer.depth += 1
        if len(by_id) == 1:
            (_, colset), = by_id.items()
            writer.line(f"_kr = {self._merge_key_source(colset)}")
            writer.line("_asn[_kr] = _asn.get(_kr, 0) + _m")
        else:
            writer.line("_cs = _bk[0]")
            for branch, (cs, colset) in enumerate(sorted(by_id.items())):
                prefix = "if" if branch == 0 else "elif"
                writer.line(f"{prefix} _cs == {cs}:")
                writer.line(f"    _kr = {self._merge_key_source(colset)}")
                writer.line("    _asn[_kr] = _asn.get(_kr, 0) + _m")
        writer.depth -= 1

    def _emit_assign_group_epilogue(self, writer, plan, group) -> None:
        """Plain-group the chain-grouped rows by the target keys."""
        if plan is None:
            return
        positions = {g: i for i, g in enumerate(group)}

        def value_of(key: str) -> str:
            if key in positions:
                return f"_gk[{positions[key]}]"
            return self._trigger_local(key)

        key = self._target_row_source(value_of)
        writer.line("for _gk, _m in _grp.items():")
        writer.line(f"    _kr = {key}")
        writer.line("    _asn[_kr] = _asn.get(_kr, 0) + _m")

    def _check_key_sources(self, plans, group, mode) -> None:
        trigger_vars = set(self.statement.event.trigger_vars)
        for key in self.statement.target_keys:
            if key in trigger_vars:
                continue
            if mode == "group":
                if group is not None and key in group:
                    continue
                raise Unsupported(f"target key {key!r} outside group and trigger vars")
            for plan in plans:
                if key not in plan.colset:
                    raise Unsupported(f"target key {key!r} not produced by every term")
        if group is not None and plans:
            plan = plans[0]
            for g in group:
                if g not in plan.colset and g not in trigger_vars:
                    raise Unsupported(f"group variable {g!r} is neither produced nor bound")

    def _plan_term(self, term: Expr, resolve=None, depth: int = 0) -> _TermPlan:
        """Plan one product term.

        ``resolve`` maps variables of the *enclosing* scope to their locals
        (``None`` outside: only trigger variables); a nested aggregate's term
        is planned with a resolver chaining through the enclosing term's
        bindings, which is exactly the evaluator's sideways information
        passing.  ``depth`` bounds recursion: grouped aggregate factors only
        compile at the statement's top level.
        """
        plan = _TermPlan()
        bound: dict[str, str] = {}
        if resolve is None:
            resolve = self._root_resolve

        def lookup(var: str) -> str | None:
            local = bound.get(var)
            if local is not None:
                return local
            return resolve(var)

        def names_for(vars_needed) -> dict[str, str]:
            out = {}
            for var in vars_needed:
                local = lookup(var)
                if local is None:
                    raise Unsupported(f"variable {var!r} is not bound at this point")
                out[var] = local
            return out

        def child_resolve_for(deps: set[str]):
            """Resolver handed to a nested aggregate, recording what it uses."""

            def child_resolve(var: str) -> str | None:
                local = lookup(var)
                if local is not None:
                    deps.add(var)
                return local

            return child_resolve

        factors = term.terms if isinstance(term, Product) else (term,)
        for node in factors:
            if isinstance(node, Product):
                raise Unsupported("nested product")
            if isinstance(node, Value):
                if isinstance(node.vexpr, VConst):
                    const = normalize_number(node.vexpr.value)
                    if is_zero(const):
                        plan.dead = True
                        return plan
                    if const == 1 and not isinstance(const, float):
                        continue
                    from repro.codegen.lowering import const_source

                    plan.factors.append(const_source(const, self.env))
                    continue
                deps = value_variables(node.vexpr)
                step = _ScalarStep("value", self._slot_for(deps, bound, plan))
                step.source = lower_value(node.vexpr, names_for(deps), self.env)
                step.local = self._fresh("s")
                plan.steps.append(step)
                plan.factors.append(step.local)
            elif isinstance(node, Cmp):
                deps = value_variables(node.left) | value_variables(node.right)
                step = _ScalarStep("cmp", self._slot_for(deps, bound, plan))
                step.source = lower_condition(
                    node.left, node.op, node.right, names_for(deps), self.env
                )
                plan.steps.append(step)
            elif isinstance(node, Lift):
                already = lookup(node.var) is not None
                if isinstance(node.term, Value):
                    deps = value_variables(node.term.vexpr)
                    # An equality lift also depends on the variable it checks.
                    slot_deps = deps | ({node.var} if already else set())
                    slot = self._slot_for(slot_deps, bound, plan)
                    step = _ScalarStep("lift_eq" if already else "lift_bind", slot)
                    step.source = lower_value(node.term.vexpr, names_for(deps), self.env)
                    if already:
                        step.check_var = lookup(node.var)
                    else:
                        step.local = self._fresh("b")
                        bound[node.var] = step.local
                        plan.colset.add(node.var)
                    plan.steps.append(step)
                elif isinstance(node.term, AggSum) and not node.term.group:
                    deps: set[str] = set()
                    spec = self._plan_scalar_agg(
                        node.term.term, child_resolve_for(deps), True, depth
                    )
                    slot_deps = deps | ({node.var} if already else set())
                    slot = self._slot_for(slot_deps, bound, plan)
                    step = _ScalarStep("lift_agg_eq" if already else "lift_agg", slot)
                    step.spec = spec
                    step.local = spec.result
                    if already:
                        step.check_var = lookup(node.var)
                    else:
                        bound[node.var] = spec.result
                        plan.colset.add(node.var)
                    plan.steps.append(step)
                else:
                    raise Unsupported("lift over a non-scalar body")
            elif isinstance(node, AggSum):
                if node.group:
                    if depth > 0:
                        raise Unsupported("grouped aggregate below the top level")
                    step = self._plan_group_agg(node, bound, plan, child_resolve_for)
                    plan.steps.append(step)
                    plan.atoms.append(step)
                    plan.factors.append(step.mult_local)
                else:
                    deps = set()
                    spec = self._plan_scalar_agg(
                        node.term, child_resolve_for(deps), True, depth
                    )
                    step = _ScalarStep("agg_factor", self._slot_for(deps, bound, plan))
                    step.spec = spec
                    step.local = spec.result
                    plan.steps.append(step)
                    plan.factors.append(spec.result)
            elif isinstance(node, Exists):
                deps = set()
                spec = self._plan_scalar_agg(
                    node.term, child_resolve_for(deps), False, depth
                )
                step = _ScalarStep("exists", self._slot_for(deps, bound, plan))
                step.spec = spec
                plan.steps.append(step)
            elif isinstance(node, (MapRef, Relation)):
                atom = self._plan_atom(node, bound, plan, resolve)
                plan.steps.append(atom)
                plan.atoms.append(atom)
                plan.factors.append(atom.mult_local)
            else:
                raise Unsupported(f"unsupported construct {type(node).__name__}")
        plan.names = dict(bound)
        return plan

    def _slot_for(self, deps, bound, plan) -> int:
        slot = 0
        for var in deps:
            local = bound.get(var)
            if local is None:
                continue  # trigger or enclosing-scope variable: slot 0
            for index, atom in enumerate(plan.atoms, start=1):
                if any(v == var for v, _, _ in atom.unbound):
                    slot = max(slot, index)
        # Lift-bound variables: find the step that defined them.
        for step in plan.steps:
            if isinstance(step, _ScalarStep) and step.kind in ("lift_bind", "lift_agg"):
                var = next((v for v, l in bound.items() if l == step.local), None)
                if var in deps:
                    slot = max(slot, step.slot)
        return slot

    def _plan_scalar_agg(self, term: Expr, resolve, chain: bool, depth: int) -> _AggSpec:
        """Plan ``AggSum([], term)`` (or an ``Exists`` body, ``chain=False``).

        Picks the cheapest faithful lowering: a nullary-map total probe, an
        ordered range probe for the guarded single-atom shape, or an inline
        scan loop over a recursively planned sub-term.
        """
        spec = _AggSpec(self._fresh("g"), chain)
        factors = term.terms if isinstance(term, Product) else (term,)
        if (
            len(factors) == 1
            and isinstance(factors[0], MapRef)
            and not factors[0].keys
            and chain
        ):
            decl = self.program.maps.get(factors[0].name)
            if decl is not None and not decl.keys:
                spec.mode = "total"
                spec.handle = self._table_handle("map", factors[0].name)
                return spec
        if self._try_plan_probe(spec, factors, resolve, depth):
            return spec
        spec.mode = "loop"
        spec.plan = self._plan_term(term, resolve=resolve, depth=depth + 1)
        return spec

    def _try_plan_probe(self, spec: _AggSpec, factors, resolve, depth: int) -> bool:
        """Recognize ``M[..k..] * (lifts...) * {k op c}`` and plan a range probe.

        The lifts may only bind scalar values feeding the cutoff (the PSP
        shape ``M1[v] * (s := Sum[](M3[])) * {v > 0.0001*s}``); every atom key
        must be free here and untouched by anything but the single guard.
        """
        if len(factors) < 2:
            return False
        atom = factors[0]
        guard_cmp = factors[-1]
        middle = factors[1:-1]
        if not isinstance(atom, MapRef) or not isinstance(guard_cmp, Cmp):
            return False
        keys = atom.keys
        keyset = set(keys)
        if not keys or len(keyset) != len(keys):
            return False
        decl = self.program.maps.get(atom.name)
        if decl is None or len(decl.keys) != len(keys):
            return False
        for key in keys:
            if resolve(key) is not None:
                return False  # bound key: a filtered scan, not a full range
        if not all(isinstance(f, Lift) for f in middle):
            return False

        lift_locals: dict[str, str] = {}
        prelude: list[tuple] = []

        def probe_names(vars_needed) -> dict[str, str] | None:
            out = {}
            for var in vars_needed:
                local = lift_locals.get(var)
                if local is None:
                    if var in keyset:
                        return None
                    local = resolve(var)
                if local is None:
                    return None
                out[var] = local
            return out

        for lift in middle:
            if lift.var in keyset or lift.var in lift_locals:
                return False
            if resolve(lift.var) is not None:
                return False  # equality lift: the loop lowering handles it
            body = lift.term
            if isinstance(body, Value):
                names = probe_names(value_variables(body.vexpr))
                if names is None:
                    return False
                source = lower_value(body.vexpr, names, self.env)
                local = self._fresh("b")
                lift_locals[lift.var] = local
                prelude.append(("value", local, source))
            elif isinstance(body, AggSum) and not body.group:
                if free_variables(body) & keyset:
                    return False
                sub_resolve = lambda var: (
                    lift_locals.get(var) or (None if var in keyset else resolve(var))
                )
                sub = self._plan_scalar_agg(body.term, sub_resolve, True, depth + 1)
                lift_locals[lift.var] = sub.result
                prelude.append(("agg", sub))
            else:
                return False

        op = guard_cmp.op
        if isinstance(guard_cmp.left, VVar) and guard_cmp.left.name in keyset:
            guard, cutoff = guard_cmp.left.name, guard_cmp.right
        elif isinstance(guard_cmp.right, VVar) and guard_cmp.right.name in keyset:
            guard, cutoff = guard_cmp.right.name, guard_cmp.left
            op = flip_comparison(op)
        else:
            return False
        if op not in RANGE_OPS:
            return False
        cutoff_vars = value_variables(cutoff)
        if cutoff_vars & keyset:
            return False
        names = probe_names(cutoff_vars)
        if names is None:
            return False
        spec.mode = "probe"
        spec.prelude = prelude
        spec.probe = self._probe_local("map", atom.name)
        spec.column = decl.keys[keys.index(guard)]
        spec.op = op
        spec.cutoff = lower_value(cutoff, names, self.env)
        return True

    def _plan_group_agg(self, node: AggSum, bound, plan, child_resolve_for) -> _GroupAggStep:
        """Plan a grouped ``AggSum`` factor: dict accumulation, then a loop."""
        step = _GroupAggStep()
        step.group = node.group
        step.dict_local = self._fresh("gd")
        step.mult_local = self._fresh("m")
        deps: set[str] = set()
        resolve = child_resolve_for(deps)
        step.plan = self._plan_term(node.term, resolve=resolve, depth=1)
        for position, var in enumerate(node.group):
            inner = step.plan.names.get(var)
            if inner is not None:
                # Produced inside: the group key carries it out of the loop.
                step.key_sources.append(inner)
                local = self._fresh("b")
                step.unbound.append((var, position, local))
                if var not in bound:
                    bound[var] = local
                    plan.colset.add(var)
                continue
            outer = resolve(var)
            if outer is None:
                raise Unsupported(
                    f"group variable {var!r} is neither produced nor bound"
                )
            step.key_sources.append(outer)
        return step

    def _plan_atom(self, node, bound: dict[str, str], plan: _TermPlan, resolve) -> _AtomStep:
        atom = _AtomStep()
        if isinstance(node, MapRef):
            atom.kind = "map"
            atom.name = node.name
            decl = self.program.maps.get(node.name)
            if decl is None:
                raise Unsupported(f"map {node.name!r} is not declared")
            atom.stored = decl.keys
            atom_vars = node.keys
        else:
            atom.kind = "relation"
            atom.name = node.name
            if node.name not in self.program.schemas:
                raise Unsupported(f"relation {node.name!r} has no schema")
            if (
                node.name not in self.program.static_relations
                and node.name not in self._maintained
            ):
                raise Unsupported(f"relation {node.name!r} is not stored at runtime")
            atom.stored = tuple(self.program.schemas[node.name])
            atom_vars = node.columns
        if len(atom.stored) != len(atom_vars):
            raise Unsupported(f"arity mismatch on {node.name!r}")
        atom.sorted_stored = tuple(sorted(atom.stored))
        atom.index = len(plan.atoms) + 1
        atom.mult_local = self._fresh("m")
        atom.row_local = self._fresh("r")

        first_pos: dict[str, int] = {}
        for position, var in enumerate(atom_vars):
            stored_col = atom.stored[position]
            plan.colset.add(var)
            if var in first_pos:
                # Repeated unbound variable within this atom: the value only
                # exists once the bucket loop binds it, so the repeat is an
                # in-row equality check, never a probe column.
                sorted_pos = atom.sorted_stored.index(stored_col)
                local = next(l for v, _, l in atom.unbound if v == var)
                atom.eq_checks.append((sorted_pos, local))
                continue
            known = bound.get(var)
            if known is None:
                known = resolve(var)
            if known is not None:
                atom.bound.append((stored_col, known))
            else:
                sorted_pos = atom.sorted_stored.index(stored_col)
                first_pos[var] = sorted_pos
                local = self._fresh("b")
                atom.unbound.append((var, sorted_pos, local))
                bound[var] = local
        return atom

    # -- emission -----------------------------------------------------------
    def _emit_term(self, writer, plan, sink) -> None:
        """Emit one term's steps in slot order, calling ``sink(writer, plan)``."""
        scalars_by_slot: dict[int, list[_ScalarStep]] = {}
        for step in plan.steps:
            if isinstance(step, _ScalarStep):
                scalars_by_slot.setdefault(step.slot, []).append(step)

        loops_opened = 0
        for slot in range(len(plan.atoms) + 1):
            for step in scalars_by_slot.get(slot, ()):
                self._emit_scalar(writer, step)
            if slot < len(plan.atoms):
                entry = plan.atoms[slot]
                if isinstance(entry, _GroupAggStep):
                    opened = self._emit_group_agg(writer, entry)
                else:
                    opened = self._emit_atom(writer, entry)
                if opened:
                    loops_opened += 1

        sink(writer, plan)
        writer.close_loops(loops_opened)

    def _emit_scalar(self, writer, step: _ScalarStep) -> None:
        if step.kind == "cmp":
            writer.line(f"if not {step.source}:")
            writer.line(f"    {writer.abort}")
        elif step.kind == "value":
            writer.line(f"{step.local} = _norm({step.source})")
            writer.line(f"if _is_zero({step.local}):")
            writer.line(f"    {writer.abort}")
        elif step.kind == "lift_bind":
            writer.line(f"{step.local} = _norm({step.source})")
            writer.line(f"if _is_zero({step.local}):")
            writer.line(f"    {step.local} = 0")
        elif step.kind == "lift_eq":
            # An already-bound lift acts as an equality condition.
            tmp = self._fresh("s")
            writer.line(f"{tmp} = _norm({step.source})")
            writer.line(f"if _is_zero({tmp}):")
            writer.line(f"    {tmp} = 0")
            writer.line(f"if {step.check_var} != {tmp}:")
            writer.line(f"    {writer.abort}")
        elif step.kind == "lift_agg":
            # The aggregate chain already normalizes (and yields 0 when
            # empty), matching the evaluator's lift-over-GMR read-back.
            self._emit_agg_spec(writer, step.spec)
        elif step.kind == "lift_agg_eq":
            self._emit_agg_spec(writer, step.spec)
            writer.line(f"if {step.check_var} != {step.spec.result}:")
            writer.line(f"    {writer.abort}")
        elif step.kind == "agg_factor":
            # A zero aggregate is an empty scalar GMR: the row dies.
            self._emit_agg_spec(writer, step.spec)
            writer.line(f"if _is_zero({step.spec.result}):")
            writer.line(f"    {writer.abort}")
        elif step.kind == "exists":
            # Exists gates on total multiplicity: zero kills the row, any
            # other value contributes multiplicity 1 (no factor).
            self._emit_agg_spec(writer, step.spec)
            writer.line(f"if _is_zero({step.spec.result}):")
            writer.line(f"    {writer.abort}")
        else:  # pragma: no cover - planner and emitter enumerate the same kinds
            raise Unsupported(f"unknown scalar step kind {step.kind!r}")

    def _emit_agg_spec(self, writer, spec: _AggSpec) -> None:
        """Emit code leaving the aggregate's value in ``spec.result``."""
        if spec.mode == "total":
            writer.line(f"{spec.result} = {spec.handle}.primary.get(_EMPTY_ROW)")
            writer.line(f"if {spec.result} is None:")
            writer.line(f"    {spec.result} = 0")
            return
        if spec.mode == "probe":
            for entry in spec.prelude:
                if entry[0] == "value":
                    _, local, source = entry
                    writer.line(f"{local} = _norm({source})")
                    writer.line(f"if _is_zero({local}):")
                    writer.line(f"    {local} = 0")
                else:
                    self._emit_agg_spec(writer, entry[1])
            writer.line(
                f"{spec.result} = {spec.probe}"
                f"({spec.column!r}, {spec.op!r}, {spec.cutoff}, {spec.chain})"
            )
            return
        # Inline scan loop.  The one-pass wrapper scopes the sub-term's
        # aborts: a failing hoisted condition inside the aggregate must empty
        # the aggregate, not abort the enclosing row.
        plan = spec.plan
        writer.line(f"{spec.result} = 0")
        if not plan.dead:
            wrapper = self._fresh("w")
            writer.open_loop(f"for {wrapper} in _ONE_PASS:")
            writer._aborts[-1] = "break"
            self._emit_term(
                writer, plan, lambda w, p: self._emit_agg_loop_sink(w, p, spec)
            )
            writer.close_loops(1)
        if not spec.chain:
            writer.line(f"{spec.result} = _norm({spec.result})")

    def _emit_agg_loop_sink(self, writer, plan, spec: _AggSpec) -> None:
        """Per-row accumulation inside an inline aggregate scan.

        ``chain=True`` replicates the GMR aggregation chain (add, drop on
        zero, normalize per step); ``chain=False`` the plain summation of
        ``total_multiplicity`` over per-entry-normalized multiplicities.
        """
        if plan.factors:
            product = self._fresh("p")
            writer.line(f"{product} = {' * '.join(plan.factors)}")
            writer.line(f"if _is_zero({product}):")
            writer.line(f"    {writer.abort}")
        else:
            product = "1"
        if spec.chain:
            tmp = self._fresh("h")
            writer.line(f"{tmp} = {spec.result} + {product}")
            writer.line(f"{spec.result} = 0 if _is_zero({tmp}) else _norm({tmp})")
        else:
            writer.line(f"{spec.result} = {spec.result} + _norm({product})")

    def _emit_group_agg(self, writer, step: _GroupAggStep) -> bool:
        """Emit a grouped aggregate factor; always opens the iteration loop."""
        writer.line(f"{step.dict_local} = {{}}")
        plan = step.plan
        if not plan.dead:
            wrapper = self._fresh("w")
            writer.open_loop(f"for {wrapper} in _ONE_PASS:")
            writer._aborts[-1] = "break"
            key = ", ".join(step.key_sources)
            key = f"({key},)" if step.key_sources else "()"

            def sink(w, p):
                if p.factors:
                    product = self._fresh("p")
                    w.line(f"{product} = {' * '.join(p.factors)}")
                    w.line(f"if _is_zero({product}):")
                    w.line(f"    {w.abort}")
                else:
                    product = "1"
                self._emit_dict_merge(w, step.dict_local, key, product)

            self._emit_term(writer, plan, sink)
            writer.close_loops(1)
        gk = self._fresh("gk")
        writer.open_loop(f"for {gk}, {step.mult_local} in {step.dict_local}.items():")
        for var, position, local in step.unbound:
            writer.line(f"{local} = {gk}[{position}]")
        return True

    def _row_source(self, entries: Sequence[tuple[str, str]]) -> str:
        """Row-construction source from (column, local) pairs, sorted by name."""
        if not entries:
            return "_EMPTY_ROW"
        ordered = sorted(entries)
        inner = ", ".join(f"({col!r}, {local})" for col, local in ordered)
        return f"_Row(({inner},))"

    def _emit_atom(self, writer, atom: _AtomStep) -> bool:
        """Emit the probe or scan for one atom; returns True when a loop opened."""
        handle = self._table_handle(atom.kind, atom.name)
        if not atom.unbound and not atom.eq_checks:
            probe = self._row_source(atom.bound)
            writer.line(f"{atom.mult_local} = {handle}.primary.get({probe})")
            writer.line(f"if {atom.mult_local} is None:")
            writer.line(f"    {writer.abort}")
            return False
        if not atom.bound:
            writer.open_loop(
                f"for {atom.row_local}, {atom.mult_local} in {handle}.primary.items():"
            )
        else:
            columns = frozenset(col for col, _ in atom.bound)
            colset = self.env.add("fs", columns)
            bucket = self._fresh("bu")
            probe = self._row_source(atom.bound)
            writer.line(f"{bucket} = {handle}.index_for({colset}).get({probe})")
            writer.line(f"if not {bucket}:")
            writer.line(f"    {writer.abort}")
            writer.open_loop(
                f"for {atom.row_local}, {atom.mult_local} in {bucket}.items():"
            )
        items = f"{atom.row_local}._items"
        for var, sorted_pos, local in atom.unbound:
            writer.line(f"{local} = {items}[{sorted_pos}][1]")
        for sorted_pos, local in atom.eq_checks:
            writer.line(f"if {items}[{sorted_pos}][1] != {local}:")
            writer.line(f"    {writer.abort}")
        return True

    def _value_for(self, var: str, plan: _TermPlan) -> str:
        local = plan.names.get(var)
        if local is not None:
            return local
        return self._trigger_local(var)

    def _target_row_source(self, value_of: Callable[[str], str]) -> str:
        table_columns = self.program.maps[self.statement.target].keys
        entries = [
            (column, value_of(key))
            for column, key in zip(table_columns, self.statement.target_keys)
        ]
        return self._row_source(entries)

    def _emit_acc(self, writer, plan) -> None:
        """The per-row delta: factor product in term order, dead on zero."""
        if plan.factors:
            writer.line(f"_acc = {' * '.join(plan.factors)}")
            writer.line("if _is_zero(_acc):")
            writer.line(f"    {writer.abort}")
        else:
            writer.line("_acc = 1")

    def _emit_sink(self, writer, plan, mode, group, colset_ids) -> None:
        self._emit_acc(writer, plan)

        if mode == "direct":
            key = self._target_row_source(lambda k: self._value_for(k, plan))
            writer.line(f"_add({key}, _acc if _scale == 1 else _acc * _scale)")
            return
        if mode == "pending":
            key = self._target_row_source(lambda k: self._value_for(k, plan))
            writer.line(f"_pend.append(({key}, _acc))")
            return
        if mode == "group":
            gk = ", ".join(self._value_for(g, plan) for g in group)
            gk = f"({gk},)" if group else "()"
            self._emit_dict_merge(writer, "_grp", gk)
            return
        # merge mode: key by (colset id, values of the produced row).
        colset = frozenset(plan.colset)
        cs = colset_ids[colset]
        values = ", ".join(self._value_for(v, plan) for v in sorted(colset))
        key = f"({cs}, {values},)" if colset else f"({cs},)"
        self._emit_dict_merge(writer, "_mrg", key)

    def _emit_dict_merge(self, writer, target: str, key_source: str, value: str = "_acc") -> None:
        """GMR ``add_tuple`` semantics on a plain dict: add, normalize, drop zero."""
        k = self._fresh("k")
        writer.line(f"{k} = {key_source}")
        writer.line(f"_o = {target}.get({k}, 0)")
        writer.line(f"_n = _o + {value}")
        writer.line("if _is_zero(_n):")
        writer.line(f"    {target}.pop({k}, None)")
        writer.line("else:")
        writer.line(f"    {target}[{k}] = _norm(_n)")

    def _emit_group_epilogue(self, writer, plan, group) -> None:
        if plan is None:
            return
        positions = {g: i for i, g in enumerate(group)}

        def value_of(key: str) -> str:
            if key in positions:
                return f"_gk[{positions[key]}]"
            return self._trigger_local(key)

        key = self._target_row_source(value_of)
        writer.line("for _gk, _m in _grp.items():")
        writer.line(f"    _add({key}, _m if _scale == 1 else _m * _scale)")

    def _emit_merge_epilogue(self, writer, plans, colset_ids) -> None:
        by_id: dict[int, frozenset[str]] = {}
        for plan in plans:
            colset = frozenset(plan.colset)
            by_id[colset_ids[colset]] = colset

        writer.line("for _bk, _m in _mrg.items():")
        writer.depth += 1
        if len(by_id) == 1:
            (cs, colset), = by_id.items()
            key = self._merge_key_source(colset)
            writer.line(f"_add({key}, _m if _scale == 1 else _m * _scale)")
        else:
            writer.line("_cs = _bk[0]")
            for branch, (cs, colset) in enumerate(sorted(by_id.items())):
                prefix = "if" if branch == 0 else "elif"
                writer.line(f"{prefix} _cs == {cs}:")
                key = self._merge_key_source(colset)
                writer.line(f"    _add({key}, _m if _scale == 1 else _m * _scale)")
        writer.depth -= 1

    def _merge_key_source(self, colset: frozenset[str]) -> str:
        positions = {v: i + 1 for i, v in enumerate(sorted(colset))}

        def value_of(key: str) -> str:
            if key in positions:
                return f"_bk[{positions[key]}]"
            return self._trigger_local(key)

        return self._target_row_source(value_of)


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def try_compile_statement(
    statement: Statement, program: TriggerProgram
) -> StatementKernel | None:
    """Compile one ``+=`` or ``:=`` statement, or return None when it must interpret.

    This *is* the capability check: anything the emitter cannot lower raises
    internally and surfaces here as None, and the caller keeps the statement
    on the interpreter path.
    """
    try:
        source, env, tables = _StatementCompiler(statement, program).compile()
    except Unsupported:
        return None
    return StatementKernel(statement, source, env, tables)


def compile_scalar_kernel(statement: Statement, columns: Sequence[str] | None = None):
    """Compile a map-free statement into the batched per-tuple fast path.

    Applies when the right-hand side is a product of scalar values and
    comparisons over the trigger variables only (external functions allowed —
    they are pinned into the kernel's namespace) and every target key is a
    trigger variable: the shape of all aggregate-only statements, e.g. the
    whole of TPC-H Q1.  Returns ``run(table, items)`` folding a delta group's
    ``(values, multiplicity)`` pairs straight into the target table, or None
    when the statement is outside the fragment.

    ``columns`` are the target table's stored column names (the map
    declaration's keys); when given, the kernel prebuilds sorted key rows
    instead of paying the table's per-add key normalization.

    This replaces the batching subsystem's original ad-hoc closure builder:
    the expression lowering is shared with the per-event statement compiler,
    and the generated kernel multiplies factors in the interpreter's exact
    order (factors first, fold multiplicity last).
    """
    if statement.operation != INCREMENT:
        return None
    expr = statement.expr
    factors = expr.terms if isinstance(expr, Product) else (expr,)
    trigger_vars = statement.event.trigger_vars
    names = {var: f"_v{i}" for i, var in enumerate(trigger_vars)}
    env = SourceEnv(_BASE_ENV)

    used: set[str] = set()
    acc_factors: list[str] = []
    body: list[str] = []
    counter = 0
    try:
        # Steps stay in term order: the interpreter evaluates factors left to
        # right and a zero value factor empties the result before later terms
        # are ever looked at, so reordering could change which expression
        # raises on ill-typed data.
        for node in factors:
            if isinstance(node, Value):
                deps = value_variables(node.vexpr)
                if not deps <= set(trigger_vars):
                    raise Unsupported("free variable outside trigger vars")
                used.update(deps)
                if isinstance(node.vexpr, VConst):
                    const = normalize_number(node.vexpr.value)
                    if is_zero(const):
                        return None  # statement is a constant no-op
                    if const == 1 and not isinstance(const, float):
                        continue
                source = lower_value(node.vexpr, names, env, allow_functions=True)
                local = f"_s{counter}"
                counter += 1
                body.append(f"{local} = _norm({source})")
                body.append(f"if _is_zero({local}):")
                body.append("    continue")
                acc_factors.append(local)
            elif isinstance(node, Cmp):
                deps = value_variables(node.left) | value_variables(node.right)
                if not deps <= set(trigger_vars):
                    raise Unsupported("free variable outside trigger vars")
                used.update(deps)
                check = lower_condition(
                    node.left, node.op, node.right, names, env, allow_functions=True
                )
                body.append(f"if not {check}:")
                body.append("    continue")
            else:
                raise Unsupported("not a scalar-only statement")
        key_positions = []
        for key in statement.target_keys:
            if key not in trigger_vars:
                raise Unsupported("target key is not a trigger variable")
            key_positions.append(trigger_vars.index(key))
            used.add(key)
    except Unsupported:
        return None

    lines = ["def _kernel(_table, _items):", "    _add = _table.add"]
    lines.append("    for _vals, _mult in _items:")
    for var in sorted(used, key=trigger_vars.index):
        i = trigger_vars.index(var)
        lines.append(f"        _v{i} = _vals[{i}]")
    for line in body:
        lines.append("        " + line)
    if acc_factors:
        lines.append(f"        _acc = {' * '.join(acc_factors)}")
        lines.append("        if _is_zero(_acc):")
        lines.append("            continue")
    else:
        lines.append("        _acc = 1")
    if columns is not None and len(columns) == len(key_positions):
        key_entries = sorted(
            (column, f"_v{position}")
            for column, position in zip(columns, key_positions)
        )
        if key_entries:
            inner = ", ".join(f"({col!r}, {local})" for col, local in key_entries)
            key = f"_Row(({inner},))"
        else:
            key = "_EMPTY_ROW"
    elif key_positions:
        # Without the table schema, hand the table a positional tuple and let
        # it normalize the key itself.
        key = "(" + ", ".join(f"_v{p}" for p in key_positions) + ",)"
    else:
        key = "_EMPTY_ROW"
    lines.append(f"        _add({key}, _acc if _mult == 1 else _acc * _mult)")
    source = "\n".join(lines) + "\n"
    namespace = dict(env.env)
    exec(compile(source, f"<repro.codegen:batch:{statement.target}>", "exec"), namespace)
    kernel = namespace["_kernel"]
    kernel.source = source  # type: ignore[attr-defined]
    return kernel
