"""Whole-trigger fusion: one compiled function per (relation, op) trigger.

Per-statement kernels already kill the per-event AST walk, but the engine
still pays a Python function call plus repeated event-unpack and
table-handle setup *per statement* per event.  This module concatenates the
statement IRs of one trigger into a single ``_kernel(_values)`` function:

* **shared preamble** — every trigger variable loads once, every table
  handle and bound method (``add``, ``range_sum``) binds once, no matter
  how many statements use them (one :class:`~repro.codegen.statement.KernelContext`
  threads through all statements);
* **cross-statement dedup** — identical probe/condition/value/row-build
  subtrees whose inputs are trigger variables only are computed once: the
  planner consults the :class:`FusionCache` while planning each statement,
  so later statements reference the first computation's local directly, and
  every subtree used by more than one statement is hoisted into a shared
  prefix that runs before the statement bodies (the Q1 shape: seven
  aggregate maps guarded by the same predicate and keyed by the same
  group-by columns).  Probes only share while the probed table is untouched
  by every fused step that ran before the reusing statement, so each
  statement still reads exactly the state sequential execution would have
  shown it;
* **scoped statement bodies** — each statement whose body can abort runs
  inside its own one-pass loop (the last statement runs bare and aborts via
  ``return``), so "this statement contributes nothing" becomes ``break`` and
  the sibling statements still run.  Statement order, the increments →
  base-relation apply → assigns sequence, and the interpreter's
  zero-drop/normalize/enumeration-order rules are preserved exactly: fused
  views are bit-identical — values and types — to per-statement and
  interpreted execution;
* **scale specialization** — the fused kernel is the per-event path, so the
  batch scale is pinned to 1 and the per-sink ``_scale`` branch disappears
  (batched execution keeps using the per-statement kernels, which retain
  the scale parameter).

Fusion is all-or-nothing per trigger: it only applies when every statement
of the trigger compiles (the same capability check as per-statement
compilation), and any surprise during fusion falls back to per-statement
dispatch rather than risk an unsound kernel.
"""

from __future__ import annotations

from typing import Any, Callable

import re

from repro.codegen import ir
from repro.codegen.emit import emit_function
from repro.codegen.lowering import Unsupported
from repro.codegen.statement import KernelContext, _StatementCompiler
from repro.compiler.program import ASSIGN, Trigger, TriggerProgram

#: Node kinds that define one local and are pure enough to scan past when
#: collecting a step's leading guards (value bindings and probes).
_PURE_DEF_KINDS = frozenset(
    ("let", "norm", "lift_bind", "primary_probe", "index_probe", "range_probe")
)

_NAME_RE = re.compile(r"\b_\w+\b")


def _guard_key(node: ir.Node) -> tuple | None:
    """A content key identifying one guard across statements, or None."""
    kind = node.kind
    if kind in ("guard_cond", "guard_zero"):
        return (kind, node.expr)
    if kind in ("guard_none", "guard_falsy"):
        return (kind, node.local)
    if kind == "guard_eq":
        return (kind, node.left, node.right)
    return None


def _referenced(node: ir.Node) -> set[str]:
    """Underscore-prefixed names a guard (or prefix def) reads."""
    parts: list[str] = []
    for attr in ("expr", "local", "left", "right", "key_expr", "cutoff_expr"):
        value = getattr(node, attr, None)
        if isinstance(value, str):
            parts.append(value)
    names: set[str] = set()
    for part in parts:
        names.update(_NAME_RE.findall(part))
    return names


def _leading_guards(body: list[ir.Node]) -> dict[tuple, int]:
    """The guards heading one step body: content key -> position.

    Scans from the top past pure value definitions and other guards; stops
    at the first node with effects (loops, sinks, merges, the base apply).
    Guards reading a local defined *inside* this step are skipped — they
    cannot move above their definition — but scanning continues, because
    reordering pure guards against each other only changes which of several
    aborts fires first, never the outcome.
    """
    found: dict[tuple, int] = {}
    step_locals: set[str] = set()
    for position, node in enumerate(body):
        if node is None:  # a def already hoisted into the shared prefix
            continue
        key = _guard_key(node)
        if key is not None:
            if not (_referenced(node) & step_locals):
                found.setdefault(key, position)
            continue
        if node.kind in _PURE_DEF_KINDS:
            step_locals.add(node.local)
            continue
        break
    return found


def _hoist_common_guards(
    step_bodies: list[list[ir.Node]],
) -> list[ir.Node]:
    """Extract guards shared by the leading region of *every* fused step.

    A guard common to all steps means "if this fails, every statement
    contributes nothing" — so it runs once at kernel top (its abort is
    ``return``) instead of once per statement, and the statements' bodies
    shrink accordingly.  Steps with an empty leading set (notably the
    base-relation apply, which must run unconditionally) block hoisting,
    which is exactly the required semantics.  Returns the hoisted guard
    nodes in first-step order.
    """
    if len(step_bodies) < 2:
        return []
    per_step = [_leading_guards(body) for body in step_bodies]
    common = set(per_step[0])
    for found in per_step[1:]:
        common &= set(found)
        if not common:
            return []
    first = per_step[0]
    hoisted: list[ir.Node] = []
    for key in sorted(common, key=lambda k: first[k]):
        hoisted.append(step_bodies[0][first[key]])
        for body, found in zip(step_bodies, per_step):
            body[found[key]] = None
    return hoisted


def _weave_guards(
    head: list[ir.Node], guards: list[ir.Node], known: set[str]
) -> list[ir.Node]:
    """Interleave hoisted guards into the kernel head, earliest-sound first.

    Each guard is placed immediately after the last definition it reads, so
    a failing guard (a filtered event) skips the prefix computations that
    only matter when it passes — matching the per-statement kernels, which
    never compute a statement's values once its leading condition fails.
    """
    placed: list[ir.Node] = []
    pending = list(guards)

    def flush() -> None:
        index = 0
        while index < len(pending):
            guard = pending[index]
            if _referenced(guard) <= known:
                placed.append(guard)
                pending.pop(index)
            else:
                index += 1

    flush()
    for node in head:
        placed.append(node)
        local = getattr(node, "local", None)
        if isinstance(local, str):
            known.add(local)
        flush()
    placed.extend(pending)  # unresolvable references: guard at the end
    return placed


class _SharedDef:
    """One dedup-eligible computation: where it was defined, who shares it."""

    __slots__ = ("local", "expr", "node", "container", "position", "shared", "table_epoch")

    def __init__(self, local: str, table_epoch: int) -> None:
        self.local = local
        self.expr = ""          # conditions: the original boolean source
        self.node: ir.Node | None = None
        self.container: list | None = None
        self.position = -1
        self.shared = False
        self.table_epoch = table_epoch


class FusionCache:
    """Cross-statement common-subexpression cache for one fused trigger.

    The statement planner consults it for every top-level probe, condition,
    value factor, lift binding and sink-row build whose inputs are trigger
    locals only (so the computation is legal in the kernel prefix, which
    runs before every statement).  A hit reuses the defining statement's
    local directly — no aliasing — and marks the definition *shared*;
    :meth:`finalize` then moves every shared definition into the prefix.

    Probe entries carry the probed table's **write epoch**: each fused step
    that writes a table bumps its epoch (:meth:`mark_write`), and a probe
    only shares while its table's epoch is unchanged *and* was zero at
    definition time — i.e. no fused step running before the reusing
    statement has written the table, so hoisting the probe to the prefix
    reads exactly the state sequential execution would have shown every
    sharer.
    """

    __slots__ = (
        "defs", "table_epochs", "deduped_probes", "deduped_scalars", "_retired",
    )

    def __init__(self) -> None:
        self.defs: dict[tuple, _SharedDef] = {}
        self.table_epochs: dict[str, int] = {}
        self.deduped_probes = 0
        self.deduped_scalars = 0
        # Stale probe definitions already shared by earlier statements: no
        # longer reusable, but they still MUST hoist (their shared local is
        # read across statement scopes).
        self._retired: list[_SharedDef] = []

    def mark_write(self, handle: str) -> None:
        """A fused step wrote ``handle``: stale every probe of it."""
        self.table_epochs[handle] = self.table_epochs.get(handle, 0) + 1

    def reuse(self, key: tuple, table: str | None = None) -> str | None:
        """The shared local for ``key``, or None when it must be computed."""
        definition = self.defs.get(key)
        if definition is None:
            return None
        if table is not None and definition.table_epoch != self.table_epochs.get(table, 0):
            # Stale: a fused step wrote the table since.  Drop the cache
            # entry so later statements compute fresh — but a definition
            # already shared by earlier statements must still be hoisted,
            # or its cross-scope readers would see an unbound local.
            del self.defs[key]
            if definition.shared:
                self._retired.append(definition)
            return None
        definition.shared = True
        if key[0] == "probe":
            self.deduped_probes += 1
        else:
            self.deduped_scalars += 1
        return definition.local

    def reserve(self, key: tuple, local: str, table: str | None = None) -> tuple | None:
        """Record a fresh definition; returns the key to attach, or None.

        Probe definitions are only recorded while their table is still
        unwritten by earlier fused steps — otherwise the computation cannot
        move to the prefix and sharing it would be unsound.
        """
        if table is not None and self.table_epochs.get(table, 0) != 0:
            return None
        self.defs[key] = _SharedDef(local, self.table_epochs.get(table, 0))
        return key

    def reuse_condition(self, key: tuple, fresh: Callable[[str], str]) -> str | None:
        """The shared boolean local for a condition, allocating it lazily.

        Conditions have no local until first reuse: the defining site keeps
        guarding the inline expression, and only when a second statement
        shares it does the expression move into a named prefix local (the
        defining guard is rewritten to test it at :meth:`finalize`).
        """
        definition = self.defs.get(key)
        if definition is None:
            return None
        if not definition.local:
            definition.local = fresh("cc")
            definition.expr = key[1]
        definition.shared = True
        self.deduped_scalars += 1
        return definition.local

    def reserve_condition(self, key: tuple) -> tuple:
        self.defs[key] = _SharedDef("", 0)
        return key

    def discard(self, keys) -> None:
        """Drop reservations whose term went dead before any IR was built.

        A zero-constant factor kills its term mid-planning: factors planned
        earlier in that term reserved cache entries whose defining nodes
        will never be emitted, so a later statement reusing one would
        reference a local that does not exist.  Only unattached definitions
        are dropped — the dying term is the only possible sharer of its own
        reservations, so this cannot strand a cross-statement reader.
        """
        for key in keys:
            definition = self.defs.get(key)
            if definition is not None and definition.node is None:
                del self.defs[key]

    def attach(self, key: tuple, node: ir.Node, container: list, position: int) -> None:
        """Bind a reserved definition to its IR node and body slot."""
        definition = self.defs.get(key)
        if definition is not None and definition.node is None:
            definition.node = node
            definition.container = container
            definition.position = position

    def finalize(self) -> list[ir.Node]:
        """Hoist every shared definition into the prefix.

        Value definitions (norms, lifts, row builds, condition expressions)
        read trigger locals only and emit first, in definition order; probe
        definitions may read a hoisted key-row local and emit after them.
        A hoisted probe whose key row is a cached single-use definition
        drags that row into the prefix with it — the probe moves above the
        row's original site, so the row must move too.
        """
        candidates = [*self.defs.values(), *self._retired]
        shared = [d for d in candidates if d.shared and d.node is not None]
        probes = [d for d in shared if d.node.kind == "primary_probe"]
        values = [d for d in shared if d.node.kind != "primary_probe"]
        by_local = {
            d.local: d
            for d in self.defs.values()
            if d.node is not None and d.local and d.node.kind == "let"
        }
        for probe in probes:
            row = by_local.get(probe.node.key_expr)
            if row is not None and not row.shared:
                row.shared = True
                values.append(row)
        prefix: list[ir.Node] = []
        for definition in values:
            if definition.expr:
                # A condition: the expression computes once into the shared
                # local; the defining guard now tests the local like every
                # other sharer.
                prefix.append(ir.Let(definition.local, definition.expr))
                definition.node.expr = definition.local
            else:
                prefix.append(definition.node)
                definition.container[definition.position] = None
        for definition in probes:
            prefix.append(definition.node)
            definition.container[definition.position] = None
        return prefix


class TriggerKernel:
    """All statements of one (relation, op) trigger fused into one function.

    ``source`` holds the generated code and ``ir_ops`` the IR operation
    counts (both surfaced by ``python -m repro.codegen dump``); ``arity`` is
    the relation arity the dispatcher validates before the kernel indexes
    the event tuple positionally.  :meth:`bind` links against live tables
    and **caches per-database resolution**: restoring a checkpoint mutates
    tables in place, so a rebind against the same store resolves to the same
    table objects and returns the cached runner without re-``exec``-ing the
    code object.
    """

    __slots__ = (
        "relation", "sign", "arity", "source", "ir_ops",
        "fused_statements", "deduped_probes", "deduped_scalars",
        "_code", "_env", "_tables", "_bound_tables", "_bound_runner",
    )

    def __init__(
        self,
        trigger: Trigger,
        source: str,
        env: dict[str, Any],
        tables: tuple[tuple[str, str, str], ...],
        arity: int,
        ir_ops: dict[str, int],
        fused_statements: int,
        deduped_probes: int,
        deduped_scalars: int,
    ) -> None:
        self.relation = trigger.relation
        self.sign = trigger.sign
        self.arity = arity
        self.source = source
        self.ir_ops = ir_ops
        self.fused_statements = fused_statements
        self.deduped_probes = deduped_probes
        self.deduped_scalars = deduped_scalars
        self._code = compile(
            source, f"<repro.codegen:fused:{trigger.name}>", "exec"
        )
        self._env = env
        self._tables = tables
        self._bound_tables: tuple | None = None
        self._bound_runner: Callable[[tuple], None] | None = None

    def describe(self) -> dict[str, Any]:
        """This kernel's shape as plain data (the ``repro.kernels/1`` idiom)."""
        return {
            "relation": self.relation,
            "op": "insert" if self.sign > 0 else "delete",
            "arity": self.arity,
            "fused_statements": self.fused_statements,
            "deduped_probes": self.deduped_probes,
            "deduped_scalars": self.deduped_scalars,
            "ir_ops": dict(self.ir_ops),
        }

    def bind(self, maps, database) -> Callable[[tuple], None]:
        """Link against live tables; returns ``run(values)``.

        Resolution is cached per concrete table set: when every handle
        resolves to the identical table object as the previous bind (the
        restore-into-the-same-engine case), the previously built runner is
        returned as-is instead of re-resolving and re-``exec``-ing.
        """
        resolved = tuple(
            maps.table(name) if kind == "map" else database.table(name)
            for _, kind, name in self._tables
        )
        cached = self._bound_tables
        if (
            cached is not None
            and len(cached) == len(resolved)
            and all(a is b for a, b in zip(cached, resolved))
        ):
            return self._bound_runner
        namespace = dict(self._env)
        for (handle, _, _), table in zip(self._tables, resolved):
            namespace[handle] = table
        exec(self._code, namespace)
        runner = namespace["_kernel"]
        self._bound_tables = resolved
        self._bound_runner = runner
        return runner


def try_fuse_trigger(trigger: Trigger, program: TriggerProgram) -> TriggerKernel | None:
    """Fuse every statement of ``trigger`` into one kernel, or return None.

    Fusion replays the per-statement planning with one shared context and the
    dedup cache, interleaves the fused steps in the executor's order
    (increments in statement order, then the base-relation apply for
    maintained relations, then assigns), hoists shared subtrees, and emits a
    single ``_kernel(_values)``.  Any :class:`Unsupported` — an uncompilable
    statement, or a guard escaping its scope — means per-statement dispatch
    (with its per-statement interpreter fallback) is used instead.
    """
    statements = list(trigger.statements)
    if not statements:
        return None
    trigger_vars = statements[0].event.trigger_vars
    increments = [s for s in statements if s.operation != ASSIGN]
    assigns = [s for s in statements if s.operation == ASSIGN]
    maintained = trigger.relation in program.requires_base_relations()

    cache = FusionCache()
    ctx = KernelContext(trigger_vars, dedup=cache)
    step_bodies: list[list[ir.Node]] = []

    def compile_step(statement) -> None:
        compiler = _StatementCompiler(
            statement, program, context=ctx, scale_var=None
        )
        step_bodies.append(compiler.compile())
        cache.mark_write(ctx.table_handle("map", statement.target))

    try:
        for statement in increments:
            compile_step(statement)
        if maintained:
            base_handle = ctx.table_handle("relation", trigger.relation)
            base_add = ctx.method_local(base_handle, "add", "badd")
            step_bodies.append(
                [ir.ExprStmt(f"{base_add}(_values, {trigger.sign})")]
            )
            cache.mark_write(base_handle)
        for statement in assigns:
            compile_step(statement)

        prefix = cache.finalize()
        hoisted_guards = _hoist_common_guards(step_bodies)
        head: list[ir.Node] = [*ctx.preamble(), *prefix]
        if hoisted_guards:
            head = _weave_guards(head, hoisted_guards, set(ctx.env.env))

        body: list[ir.Node] = head
        for position, step_body in enumerate(step_bodies):
            live = [node for node in step_body if node is not None]
            if ir.needs_scope(live) and position != len(step_bodies) - 1:
                body.append(ir.OnePass(ctx.fresh("w"), live))
            else:
                # The last step runs bare: nothing follows it, so its aborts
                # compile to ``return`` — exactly the per-statement kernel
                # shape, with no one-pass wrapper overhead.
                body.extend(live)
        # Top-level abort is ``return``; only the final step may reach it (a
        # guard escaping an earlier statement's scope would corrupt the
        # siblings, which the per-step wrapping above rules out).
        source = emit_function("_kernel", ("_values",), body, abort="return")
        return TriggerKernel(
            trigger,
            source,
            ctx.env.env,
            tuple(ctx.tables),
            len(trigger_vars),
            ir.count_ops(body),
            len(statements),
            cache.deduped_probes,
            cache.deduped_scalars,
        )
    except (Unsupported, SyntaxError):
        # Unsupported is the planner declining; SyntaxError means the IR
        # rendered to invalid Python — either way, per-statement dispatch
        # is always available and always correct.
        return None
