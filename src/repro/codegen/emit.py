"""Emission: the only place kernel Python source is generated.

The planner (:mod:`repro.codegen.statement`) and the fuser
(:mod:`repro.codegen.trigger`) both hand this module IR trees
(:mod:`repro.codegen.ir`); :func:`emit_function` walks them once and renders
the kernel source string that :class:`~repro.codegen.statement.StatementKernel`
and :class:`~repro.codegen.trigger.TriggerKernel` compile.

The one piece of state the walk carries is the **abort stack**: what "this
row/term produces nothing" compiles to at the current point — ``return`` at
function top level, ``break`` inside a one-pass scope, ``continue`` inside a
scan loop.  Guards read the top of the stack; block nodes push and pop it.
A caller that knows a body must never abort at its level (an unscoped fused
statement) passes ``abort=None``, and a guard reaching that sentinel raises
:class:`~repro.codegen.lowering.Unsupported` rather than emit unsound code.
"""

from __future__ import annotations

from repro.codegen import ir
from repro.codegen.lowering import Unsupported


class _Writer:
    """Tiny indented-source writer with the abort-statement stack."""

    def __init__(self, abort: str | None) -> None:
        self.lines: list[str] = []
        self.depth = 0
        self._aborts: list[str | None] = [abort]

    def line(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    @property
    def abort(self) -> str:
        top = self._aborts[-1]
        if top is None:
            raise Unsupported("guard outside any abort scope")
        return top

    def push(self, abort: str | None) -> None:
        self.depth += 1
        self._aborts.append(abort)

    def pop(self) -> None:
        self.depth -= 1
        self._aborts.pop()

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def emit_function(
    name: str,
    params: tuple[str, ...],
    body: list[ir.Node],
    abort: str | None = "return",
) -> str:
    """Render ``def name(params):`` with ``body`` as the function's source."""
    writer = _Writer(abort)
    writer.line(f"def {name}({', '.join(params)}):")
    writer.depth += 1
    if not body:
        writer.line("pass")
    else:
        _emit_nodes(writer, body)
    writer.depth -= 1
    return writer.source()


def _emit_nodes(writer: _Writer, nodes: list[ir.Node]) -> None:
    for node in nodes:
        if node is not None:  # a fused-away (hoisted) slot
            _emit_node(writer, node)


def _emit_block_body(writer: _Writer, nodes: list[ir.Node]) -> None:
    """A block body; renders ``pass`` when every child was fused away."""
    before = len(writer.lines)
    _emit_nodes(writer, nodes)
    if len(writer.lines) == before:
        writer.line("pass")


def _emit_node(writer: _Writer, node: ir.Node) -> None:
    kind = node.kind
    line = writer.line
    if kind == "event_load":
        line(f"{node.local} = _values[{node.index}]")
    elif kind == "bind_method":
        line(f"{node.local} = {node.handle}.{node.attr}")
    elif kind == "let":
        line(f"{node.local} = {node.expr}")
    elif kind == "norm":
        line(f"{node.local} = _norm({node.expr})")
    elif kind == "lift_bind":
        line(f"{node.local} = _norm({node.expr})")
        line(f"if _is_zero({node.local}):")
        line(f"    {node.local} = 0")
    elif kind == "guard_cond":
        line(f"if not {node.expr}:")
        line(f"    {writer.abort}")
    elif kind == "guard_zero":
        line(f"if _is_zero({node.expr}):")
        line(f"    {writer.abort}")
    elif kind == "guard_none":
        line(f"if {node.local} is None:")
        line(f"    {writer.abort}")
    elif kind == "guard_falsy":
        line(f"if not {node.local}:")
        line(f"    {writer.abort}")
    elif kind == "guard_eq":
        line(f"if {node.left} != {node.right}:")
        line(f"    {writer.abort}")
    elif kind == "field_guard":
        line(f"if {node.row_local}._items[{node.pos}][1] != {node.local}:")
        line(f"    {writer.abort}")
    elif kind == "primary_probe":
        line(f"{node.local} = {node.handle}.primary.get({node.key_expr})")
    elif kind == "default_zero":
        line(f"if {node.local} is None:")
        line(f"    {node.local} = 0")
    elif kind == "index_probe":
        line(f"{node.local} = {node.handle}.index_for({node.colset}).get({node.key_expr})")
    elif kind == "range_probe":
        line(
            f"{node.local} = {node.probe_local}"
            f"({node.column!r}, {node.op!r}, {node.cutoff_expr}, {node.chain})"
        )
    elif kind == "extract":
        line(f"{node.local} = {node.row_local}._items[{node.pos}][1]")
    elif kind == "dict_merge":
        line(f"{node.key_local} = {node.key_expr}")
        line(f"_o = {node.target}.get({node.key_local}, 0)")
        line(f"_n = _o + {node.value_expr}")
        line("if _is_zero(_n):")
        line(f"    {node.target}.pop({node.key_local}, None)")
        line("else:")
        line(f"    {node.target}[{node.key_local}] = _norm(_n)")
    elif kind == "plain_merge":
        line(f"{node.key_local} = {node.key_expr}")
        line(
            f"{node.target}[{node.key_local}] = "
            f"{node.target}.get({node.key_local}, 0) + {node.value_expr}"
        )
    elif kind == "append":
        line(f"{node.target}.append({node.expr})")
    elif kind == "sink_add":
        if node.scale_var is None:
            line(f"{node.add_local}({node.key_expr}, {node.value_expr})")
        else:
            scale = node.scale_var
            line(
                f"{node.add_local}({node.key_expr}, {node.value_expr} "
                f"if {scale} == 1 else {node.value_expr} * {scale})"
            )
    elif kind == "agg_chain":
        line(f"{node.tmp_local} = {node.result} + {node.product_expr}")
        line(f"{node.result} = 0 if _is_zero({node.tmp_local}) else _norm({node.tmp_local})")
    elif kind == "agg_plain":
        line(f"{node.result} = {node.result} + _norm({node.product_expr})")
    elif kind == "replace":
        line(f"{node.handle}.replace({node.arg_expr})")
    elif kind == "stmt":
        line(node.expr)
    elif kind == "scope":
        line(f"for {node.var} in _ONE_PASS:")
        writer.push("break")
        _emit_block_body(writer, node.body)
        writer.pop()
    elif kind == "full_scan":
        line(f"for {node.row_local}, {node.mult_local} in {node.handle}.primary.items():")
        writer.push("continue")
        _emit_block_body(writer, node.body)
        writer.pop()
    elif kind == "items_loop":
        line(f"for {node.key_local}, {node.value_local} in {node.subject}.items():")
        writer.push("continue")
        _emit_block_body(writer, node.body)
        writer.pop()
    elif kind == "pair_loop":
        line(f"for {node.key_local}, {node.value_local} in {node.subject}:")
        writer.push("continue")
        _emit_block_body(writer, node.body)
        writer.pop()
    elif kind == "branch":
        for position, (condition, body) in enumerate(node.cases):
            line(f"{'if' if position == 0 else 'elif'} {condition}:")
            writer.depth += 1
            _emit_block_body(writer, body)
            writer.depth -= 1
    else:  # pragma: no cover - planner and emitter enumerate the same kinds
        raise Unsupported(f"unknown IR node kind {kind!r}")
