"""Command-line inspection of generated trigger kernels.

``dump`` compiles a workload query and prints, per trigger, the fused kernel
source (or the per-statement kernels where fusion does not apply) together
with IR operation counts and the fusion/dedup statistics — the tool to reach
for when a generated kernel misbehaves or a fusion win needs verifying::

    python -m repro.codegen dump Q3
    python -m repro.codegen dump Q1 --trigger Lineitem:+
    python -m repro.codegen dump VWAP --per-statement

``--trigger REL:+`` / ``REL:-`` restricts the output to one (relation, op)
trigger; ``--per-statement`` additionally prints every statement's
individual kernel (the batched execution path) below the fused one;
``--json`` emits the ``repro.kernels/1`` machine description instead — the
same document ``python -m repro.inspect explain`` joins with observed
statistics.
"""

from __future__ import annotations

import argparse

from repro.codegen.engine import CompiledEngine
from repro.compiler.hoivm import compile_query
from repro.workloads import all_workloads, workload


def _parse_trigger(text: str) -> tuple[str, int]:
    relation, _, op = text.partition(":")
    if op not in ("+", "-") or not relation:
        raise argparse.ArgumentTypeError(
            f"expected REL:+ or REL:- (e.g. Lineitem:+), got {text!r}"
        )
    return relation, 1 if op == "+" else -1


def _format_ops(ops: dict[str, int]) -> str:
    return ", ".join(f"{kind}={count}" for kind, count in sorted(ops.items())) or "-"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.codegen",
        description="Inspect the kernels the codegen pipeline generates.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    dump = sub.add_parser(
        "dump", help="Print generated kernel source and IR op counts for a query"
    )
    dump.add_argument("query", help="workload query name (see `python -m repro.bench list`)")
    dump.add_argument(
        "--trigger", type=_parse_trigger, default=None, metavar="REL:+/-",
        help="restrict to one trigger, e.g. Lineitem:+ or Bids:-",
    )
    dump.add_argument(
        "--per-statement", action="store_true",
        help="also print each statement's individual kernel",
    )
    dump.add_argument(
        "--json", action="store_true",
        help="emit the repro.kernels/1 machine-readable kernel description "
             "(the same document the repro.inspect explain report embeds)",
    )
    dump.add_argument(
        "--backend", choices=("scalar", "vector"), default="scalar",
        help="which emitter's kernels to print: the scalar/fused source "
             "(default) or the columnar numpy batch kernels with the "
             "per-statement reason wherever vectorization does not apply",
    )
    return parser


def _dump_vector(query_name: str, program, triggers) -> int:
    """Print the columnar batch kernel (or the reason there is none) per statement."""
    from repro.codegen import vector

    if not vector.numpy_available():
        print(f"{query_name}: vector backend unavailable ({vector.vector_unavailable_reason()})")
        return 2

    from repro.codegen.lowering import Unsupported

    statements = [(t, s) for t in triggers for s in t.statements]
    kernels: dict[int, object] = {}
    for trigger, statement in statements:
        try:
            kernels[id(statement)] = vector.compile_vector(statement, program)
        except Unsupported as exc:
            kernels[id(statement)] = str(exc)
    compiled = sum(1 for k in kernels.values() if not isinstance(k, str))
    print(
        f"{query_name}: {compiled}/{len(statements)} statements vectorized "
        f"(columnar batch kernels; the rest run the scalar path)"
    )
    for trigger in triggers:
        print()
        print(f"== {trigger.name}: vector backend ==")
        for position, statement in enumerate(trigger.statements):
            kernel = kernels[id(statement)]
            print()
            if isinstance(kernel, str):
                print(
                    f"-- statement {position} -> {statement.target}: "
                    f"scalar ({kernel})"
                )
                continue
            print(f"-- statement {position} -> {statement.target}:")
            print(kernel.source, end="")
            if kernel.key_columns:
                keys = ", ".join(kernel.key_columns)
                print(f"-- sink keys: {keys} (segmented cumsum merge)")
            else:
                print("-- sink keys: none (single running total)")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        spec = workload(args.query)
    except KeyError:
        print(f"unknown query {args.query!r}; available: {', '.join(sorted(all_workloads()))}")
        return 2

    translated = spec.query_factory()
    program = compile_query(
        translated.roots(),
        translated.schemas(),
        static_relations=translated.static_relations(),
    )
    if args.json:
        import json

        from repro.codegen.describe import describe_program

        print(json.dumps(describe_program(program), indent=2, sort_keys=True))
        return 0

    triggers = sorted(
        program.triggers.values(), key=lambda t: (t.relation, -t.sign)
    )
    if args.trigger is not None:
        relation, sign = args.trigger
        triggers = [t for t in triggers if t.relation == relation and t.sign == sign]
        if not triggers:
            print(f"no trigger for {relation}:{'+' if sign > 0 else '-'} in {args.query}")
            return 2
    if args.backend == "vector":
        return _dump_vector(args.query, program, triggers)
    engine = CompiledEngine(program)
    executor = engine.codegen

    summary = executor.codegen_statistics()
    print(
        f"{args.query}: {summary['compiled_statements']} statements compiled, "
        f"{summary['fallback_statements']} on the interpreter; "
        f"{summary['fused_kernels']} fused kernels "
        f"({summary['deduped_probes']} probes, "
        f"{summary['deduped_scalars']} scalars deduped)"
    )
    for trigger in triggers:
        fused = executor.trigger_kernel_for(trigger.sign, trigger.relation)
        print()
        if fused is not None:
            print(
                f"== {trigger.name}: fused kernel "
                f"({fused.fused_statements} statements, "
                f"{fused.deduped_probes} probes + "
                f"{fused.deduped_scalars} scalars deduped) =="
            )
            print(fused.source, end="")
            print(f"-- IR ops: {_format_ops(fused.ir_ops)}")
            if not args.per_statement:
                continue
        else:
            print(f"== {trigger.name}: per-statement dispatch (no fused kernel) ==")
        for position, statement in enumerate(trigger.statements):
            kernel = executor.kernel_for(statement)
            print()
            if kernel is None:
                print(
                    f"-- statement {position} -> {statement.target}: "
                    f"interpreter fallback"
                )
                continue
            print(f"-- statement {position} -> {statement.target}:")
            print(kernel.source, end="")
            print(f"-- IR ops: {_format_ops(kernel.ir_ops)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
