"""Machine-readable kernel descriptions (``repro.kernels/1``).

The codegen pipeline already *has* a complete physical design for every
trigger — the planner decides, per map access, whether it becomes a bound-key
primary probe, a secondary-index probe, an ordered range probe or a full
scan, and the fuser decides which triggers collapse into one kernel.  This
module re-runs stage 1 (planning) purely for its IR and walks the trees into
one JSON-friendly document, shared verbatim by ``python -m repro.codegen
dump --json`` and the ``repro.inspect`` explain report.

Describing never executes kernels and never touches live tables: handles are
resolved through the planning context's handle table, so the description is
available for programs that have processed zero events.
"""

from __future__ import annotations

from typing import Any

from repro.codegen import ir
from repro.codegen.lowering import Unsupported
from repro.codegen.statement import KernelContext, _StatementCompiler
from repro.codegen.trigger import try_fuse_trigger
from repro.compiler.program import Statement, Trigger, TriggerProgram

#: Schema tag of the kernel-description document.
KERNELS_SCHEMA = "repro.kernels/1"

#: IR node kinds that constitute a table access, with the report's shape name.
_ACCESS_SHAPES = {
    "primary_probe": "primary_probe",
    "index_probe": "index_probe",
    "range_probe": "range_probe",
    "full_scan": "full_scan",
    "sink_add": "sink_add",
    "replace": "replace",
}


def _handle_resolver(context: KernelContext):
    """handle/local -> (kind, table name) maps for one planning context."""
    tables = {handle: (kind, name) for handle, kind, name in context.tables}
    # Bound-method locals (``add``, ``range_sum``) resolve through their
    # owning handle: AddDelta and RangeProbe reference the method local, not
    # the handle itself.
    methods = {
        local: handle for (handle, _attr), local in context._method_locals.items()
    }
    return tables, methods


def _accesses(nodes: list[ir.Node], context: KernelContext) -> list[dict[str, Any]]:
    """Every table access in one kernel body, in plan order."""
    tables, methods = _handle_resolver(context)

    def resolve(handle: str) -> tuple[str, str]:
        handle = methods.get(handle, handle)
        return tables.get(handle, ("?", handle))

    out: list[dict[str, Any]] = []
    for node in ir.walk(nodes):
        shape = _ACCESS_SHAPES.get(node.kind)
        if shape is None:
            continue
        if node.kind == "primary_probe":
            kind, name = resolve(node.handle)
        elif node.kind == "index_probe":
            kind, name = resolve(node.handle)
        elif node.kind == "range_probe":
            kind, name = resolve(node.probe_local)
        elif node.kind == "full_scan":
            kind, name = resolve(node.handle)
        elif node.kind == "sink_add":
            kind, name = resolve(node.add_local)
        else:  # replace
            kind, name = resolve(node.handle)
        access: dict[str, Any] = {"table": name, "kind": kind, "shape": shape}
        if node.kind == "index_probe":
            access["colset"] = node.colset
        elif node.kind == "range_probe":
            access["column"] = node.column
            access["op"] = node.op
        out.append(access)
    return out


def describe_statement(statement: Statement, program: TriggerProgram) -> dict[str, Any]:
    """Plan one statement and describe its physical shape (or its fallback)."""
    description: dict[str, Any] = {
        "target": statement.target,
        "operation": statement.operation,
    }
    try:
        compiler = _StatementCompiler(statement, program)
        body = compiler.compile()
        nodes = compiler.ctx.preamble() + body
    except Unsupported as exc:
        description["compiled"] = False
        description["fallback_reason"] = str(exc)
        description["vectorized"] = False
        description["vector_reason"] = "statement does not plan"
        return description
    description["compiled"] = True
    description["ir_ops"] = ir.count_ops(nodes)
    description["accesses"] = _accesses(nodes, compiler.ctx)
    description.update(_vector_status(statement, program))
    return description


def _vector_status(statement: Statement, program: TriggerProgram) -> dict[str, Any]:
    """Whether the columnar batch emitter covers one statement, and why not.

    ``vectorized`` answers for the statement shape alone — the batched
    engine additionally requires the owning trigger to be bulk-safe, and
    falls back per batch on regime violations at runtime.
    """
    from repro.codegen import vector

    if not vector.numpy_available():
        return {
            "vectorized": False,
            "vector_reason": vector.vector_unavailable_reason(),
        }
    try:
        vector.compile_vector(statement, program)
    except Unsupported as exc:
        return {"vectorized": False, "vector_reason": str(exc)}
    return {"vectorized": True}


def describe_trigger(trigger: Trigger, program: TriggerProgram) -> dict[str, Any]:
    """One trigger's per-statement plans plus its fusion outcome."""
    statements = [describe_statement(s, program) for s in trigger.statements]
    fused = try_fuse_trigger(trigger, program)
    description: dict[str, Any] = {
        "relation": trigger.relation,
        "op": "insert" if trigger.sign > 0 else "delete",
        "statements": statements,
        "fused": fused is not None,
    }
    if fused is not None:
        description["fusion"] = {
            "fused_statements": fused.fused_statements,
            "deduped_probes": fused.deduped_probes,
            "deduped_scalars": fused.deduped_scalars,
            "ir_ops": fused.ir_ops,
        }
    return description


def describe_program(program: TriggerProgram) -> dict[str, Any]:
    """The full ``repro.kernels/1`` document for one trigger program."""
    triggers = [
        describe_trigger(trigger, program)
        for trigger in program.triggers.values()
    ]
    compiled = sum(
        1 for t in triggers for s in t["statements"] if s["compiled"]
    )
    fallbacks = [
        {
            "relation": t["relation"],
            "op": t["op"],
            "target": s["target"],
            "reason": s["fallback_reason"],
        }
        for t in triggers
        for s in t["statements"]
        if not s["compiled"]
    ]
    # Per-map probe-shape rollup: which access shapes reach each map, across
    # every trigger — the physical-design summary the explain report leads
    # with (and the input an adaptive index selector would consume).
    maps: dict[str, dict[str, Any]] = {}
    for name, decl in program.maps.items():
        maps[name] = {
            "keys": list(decl.keys),
            "level": decl.level,
            "degree": decl.degree,
            "definition": decl.pretty(),
            "access_shapes": {},
        }
    for t in triggers:
        for s in t["statements"]:
            for access in s.get("accesses", ()):
                if access["kind"] != "map" or access["table"] not in maps:
                    continue
                shapes = maps[access["table"]]["access_shapes"]
                shapes[access["shape"]] = shapes.get(access["shape"], 0) + 1
    return {
        "schema": KERNELS_SCHEMA,
        "roots": {root: program.roots[root] for root in sorted(program.roots)},
        "stream_relations": sorted(program.stream_relations),
        "static_relations": sorted(program.static_relations),
        "maps": maps,
        "triggers": triggers,
        "summary": {
            "triggers": len(triggers),
            "compiled_statements": compiled,
            "vectorized_statements": sum(
                1 for t in triggers for s in t["statements"]
                if s.get("vectorized")
            ),
            "fallback_statements": len(fallbacks),
            "fallbacks": fallbacks,
            "fused_kernels": sum(1 for t in triggers if t["fused"]),
            "deduped_probes": sum(
                t.get("fusion", {}).get("deduped_probes", 0) for t in triggers
            ),
            "deduped_scalars": sum(
                t.get("fusion", {}).get("deduped_scalars", 0) for t in triggers
            ),
        },
    }
