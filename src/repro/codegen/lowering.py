"""Lowering of AGCA scalar value expressions to Python source.

Value expressions (:class:`~repro.agca.ast.ValueExpr`) are pure arithmetic
over bound variables, so they lower to plain Python expressions: ``+ - *``
map to the native operators, ``/`` to the library's :func:`repro.core.values.div`
(division by zero yields 0), comparisons to native comparison operators
(semantically identical to :func:`repro.core.values.compare` for the value
types that flow through the runtime, including the ``TypeError`` on ordering
a number against a string).

Anything outside the fragment a caller supports raises :class:`Unsupported`,
which the statement compiler turns into an interpreter fallback.  External
functions (``VFunc``) are only lowered when the caller opts in
(``allow_functions=True``, used by the batched scalar fast path); the
per-event statement compiler leaves them to the interpreter by policy so the
fallback path stays exercised.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.agca.ast import VArith, VConst, VFunc, VVar, ValueExpr
from repro.errors import EvaluationError


class Unsupported(Exception):
    """An expression is outside the compilable fragment (internal control flow)."""


#: AGCA comparison operators and their Python spellings.
CMP_OPS = {
    "=": "==",
    "==": "==",
    "!=": "!=",
    "<>": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
}

#: Constant types whose ``repr`` round-trips as a Python literal.
_INLINE_CONST_TYPES = (int, float, str, bool, type(None))


class SourceEnv:
    """The namespace shared by every function generated for one kernel.

    Allocates fresh names for values that must live in the function's globals
    (non-literal constants, pinned external functions, table handles) and
    carries the mapping handed to ``exec``.
    """

    def __init__(self, base: Mapping[str, Any] | None = None) -> None:
        self.env: dict[str, Any] = dict(base or {})
        self._counter = 0

    def add(self, prefix: str, value: Any) -> str:
        name = f"_{prefix}{self._counter}"
        self._counter += 1
        self.env[name] = value
        return name


def const_source(value: Any, env: SourceEnv) -> str:
    """Python source for a constant: a literal when it round-trips, else a name."""
    if isinstance(value, _INLINE_CONST_TYPES):
        return repr(value)
    return env.add("c", value)


def lower_value(
    vexpr: ValueExpr,
    names: Mapping[str, str],
    env: SourceEnv,
    allow_functions: bool = False,
) -> str:
    """Python expression source computing ``vexpr`` over the locals in ``names``.

    ``names`` maps every bound variable to the generated local holding its
    value; a reference to an unmapped variable raises :class:`Unsupported`
    (the interpreter raises ``UnboundVariableError`` for it at run time, and
    falling back preserves that behaviour).
    """
    if isinstance(vexpr, VConst):
        return const_source(vexpr.value, env)
    if isinstance(vexpr, VVar):
        local = names.get(vexpr.name)
        if local is None:
            raise Unsupported(f"variable {vexpr.name!r} is not bound at this point")
        return local
    if isinstance(vexpr, VArith):
        left = lower_value(vexpr.left, names, env, allow_functions)
        right = lower_value(vexpr.right, names, env, allow_functions)
        if vexpr.op == "/":
            return f"_div({left}, {right})"
        return f"({left} {vexpr.op} {right})"
    if isinstance(vexpr, VFunc):
        if not allow_functions:
            raise Unsupported(f"external function {vexpr.name!r}")
        from repro.agca.functions import lookup_function

        try:
            fn = lookup_function(vexpr.name)
        except EvaluationError:
            raise Unsupported(f"unknown scalar function {vexpr.name!r}") from None
        handle = env.add("fn", fn)
        args = ", ".join(lower_value(a, names, env, allow_functions) for a in vexpr.args)
        return f"{handle}({args})"
    raise Unsupported(f"not a value expression: {vexpr!r}")


def lower_condition(
    left: ValueExpr,
    op: str,
    right: ValueExpr,
    names: Mapping[str, str],
    env: SourceEnv,
    allow_functions: bool = False,
) -> str:
    """Python boolean expression source for the comparison ``left op right``."""
    py_op = CMP_OPS.get(op)
    if py_op is None:
        raise Unsupported(f"comparison operator {op!r}")
    lhs = lower_value(left, names, env, allow_functions)
    rhs = lower_value(right, names, env, allow_functions)
    return f"({lhs} {py_op} {rhs})"
