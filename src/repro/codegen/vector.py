"""Columnar batch emitter: numpy-vectorized kernels over the kernel IR.

The scalar pipeline (plan -> IR -> emit) produces per-event kernels; this
module walks the *same* statement IR and emits a kernel that processes an
entire folded delta batch per call — one ndarray per trigger column, masks
instead of branch guards, hash-probe gathers against the table primaries,
prefix-sum range probes against :class:`~repro.runtime.ordered.OrderedRangeIndex`,
and a segmented seeded-cumsum sink that reproduces the scalar add chain.

Fast-numeric regime and the bit-identity contract
-------------------------------------------------
Default-mode results must stay bit-identical — values *and* types — to the
scalar backend.  The vector path therefore runs in an explicit **fast-numeric
regime** (mirroring ``OrderedRangeIndex``'s exact-regime split):

* all value arithmetic is computed in float64.  IEEE double addition and
  multiplication agree bit-for-bit with the interpreter's mixed int/float
  arithmetic as long as every operand and every intermediate result has
  magnitude below 2**53 (ints convert exactly; float ops are the identical
  IEEE operations).  :func:`_ck` enforces that bound on every ``+ - *``
  result at run time and raises :class:`VectorFallback` when it fails
  (NaN-safe: comparisons against NaN are False).
* columns must be homogeneously ``int`` (|v| < 2**53), ``float`` (finite) or
  ``str`` (guards/keys only); bools, ``Fraction``, ``None`` or mixed types
  fall back.
* the sink replays the scalar per-key add chain as a seeded ``np.cumsum``
  (verified left-sequential) per key segment, falling back whenever a seed
  is a ``Fraction``, any seed or partial reaches 2**53, or an *intermediate*
  partial is zero-ish (the scalar chain would delete and re-insert the key,
  changing dict insertion order).

Fallback is per *statement* per batch: the kernel computes its entire write
list before touching any table, so a failed statement is replayed through
the scalar path with the state exactly as it was before the statement.

numpy is optional: when it cannot be imported (or ``REPRO_NO_NUMPY`` is set,
the CI no-numpy leg), the backend auto-disables and the reason is surfaced
through ``describe()`` and the batching statistics.
"""

from __future__ import annotations

import ast
import os
from typing import Any, Callable, Mapping, Sequence

from repro.codegen import ir
from repro.codegen.lowering import Unsupported
from repro.compiler.program import INCREMENT, Statement, TriggerProgram
from repro.core.rows import Row

try:  # pragma: no cover - exercised via the no-numpy CI leg
    if os.environ.get("REPRO_NO_NUMPY"):
        raise ImportError("disabled by REPRO_NO_NUMPY")
    import numpy as np

    _NUMPY_REASON: str | None = None
except ImportError as _exc:  # pragma: no cover
    np = None  # type: ignore[assignment]
    _NUMPY_REASON = f"numpy unavailable ({_exc})"


def numpy_available() -> bool:
    """True when the vector backend can run in this process."""
    return np is not None


def vector_unavailable_reason() -> str | None:
    """Why the vector backend is disabled, or None when it is available."""
    return _NUMPY_REASON


class VectorFallback(Exception):
    """A batch left the fast-numeric regime; replay the statement scalar."""


#: Magnitude bound for exact float64 arithmetic over int-valued data.
_LIMIT = float(2**53)
_EPS = 1e-12
#: Above this many key segments the per-segment cumsum loop stops paying off.
_MAX_SEGMENTS = 64
_MISSING = object()


# ---------------------------------------------------------------------------
# Column batches
# ---------------------------------------------------------------------------


class ColumnBatch:
    """Columnarized view of one folded delta group's ``(values, mult)`` items.

    Columns classify lazily on first use: homogeneous ``int`` columns become
    int64 (overflow falls back), ``float`` columns float64 (non-finite falls
    back), ``str`` columns ``'<U'`` arrays (raw use only); anything else —
    bools, ``Fraction``, ``None``, mixed types — raises
    :class:`VectorFallback`.  ``num()`` converts to float64 after the 2**53
    exactness check; ``raw()`` keeps the native dtype for guards and probe
    keys.  Sink-key factorizations are cached per position tuple so sibling
    statements keyed by the same columns (the Q1 shape) pay once per batch.
    """

    __slots__ = ("n", "_values", "_mult_list", "_lists", "_raw", "_num",
                 "_mults", "_key_cache")

    def __init__(self, items: Sequence[tuple[tuple, int]]) -> None:
        self.n = len(items)
        self._values = [item[0] for item in items]
        self._mult_list = [item[1] for item in items]
        self._lists: dict[int, list] = {}
        self._raw: dict[int, Any] = {}
        self._num: dict[int, Any] = {}
        self._mults = None
        self._key_cache: dict[tuple, tuple] = {}

    def col_list(self, index: int) -> list:
        """The native Python values of one event column (keys use these)."""
        vals = self._lists.get(index)
        if vals is None:
            vals = [values[index] for values in self._values]
            self._lists[index] = vals
        return vals

    def raw(self, index: int):
        """Native-dtype ndarray of one column (int64 / float64 / '<U')."""
        arr = self._raw.get(index)
        if arr is None:
            arr = self._classify(self.col_list(index))
            self._raw[index] = arr
        return arr

    def num(self, index: int):
        """float64 ndarray of one column (exactness-checked for ints)."""
        arr = self._num.get(index)
        if arr is None:
            raw = self.raw(index)
            kind = raw.dtype.kind
            if kind == "f":
                arr = raw
            elif kind == "i":
                if not np.all(np.abs(raw) < _LIMIT):
                    raise VectorFallback("int-magnitude")
                arr = raw.astype(np.float64)
            else:
                raise VectorFallback("string-arithmetic")
            self._num[index] = arr
        return arr

    def mults(self):
        """float64 array of folded multiplicities."""
        if self._mults is None:
            self._mults = np.array(self._mult_list, dtype=np.float64)
        return self._mults

    @staticmethod
    def _classify(vals: list):
        kinds = {type(v) for v in vals}
        if kinds == {int}:
            try:
                return np.array(vals, dtype=np.int64)
            except OverflowError:
                raise VectorFallback("int-overflow") from None
        if kinds == {float}:
            arr = np.array(vals, dtype=np.float64)
            if not np.all(np.isfinite(arr)):
                raise VectorFallback("non-finite")
            return arr
        if kinds == {str}:
            return np.array(vals)
        raise VectorFallback("mixed-column")

    def key_groups(self, positions: tuple[int, ...], columns: tuple[str, ...]):
        """Factorize the key tuple at ``positions``: (rows, inverse array).

        ``rows`` are :class:`Row` objects (name-sorted ``columns`` zip the
        native values, preserving key value types exactly); ``inverse[i]``
        indexes each batch row's key in ``rows``.  Cached per position tuple.
        """
        cached = self._key_cache.get(positions)
        if cached is None:
            lists = [self.col_list(p) for p in positions]
            mapping: dict[tuple, int] = {}
            inverse = np.empty(self.n, dtype=np.int64)
            uniques: list[tuple] = []
            for i, key in enumerate(zip(*lists)):
                j = mapping.get(key)
                if j is None:
                    j = len(uniques)
                    mapping[key] = j
                    uniques.append(key)
                inverse[i] = j
            cached = (uniques, inverse, {})
            self._key_cache[positions] = cached
        uniques, inverse, row_cache = cached
        rows = row_cache.get(columns)
        if rows is None:
            rows = [
                Row.from_sorted_items(tuple(zip(columns, key))) for key in uniques
            ]
            row_cache[columns] = rows
        return rows, inverse

    def prewarm(self, uses: Sequence[tuple[str, Any]]) -> None:
        """Build the arrays/factorizations ``uses`` names (staged ingest)."""
        try:
            for kind, arg in uses:
                if kind == "num":
                    self.num(arg)
                elif kind == "raw":
                    self.raw(arg)
                elif kind == "key":
                    self.key_groups(arg[0], arg[1])
                elif kind == "mults":
                    self.mults()
        except VectorFallback:
            pass  # the apply path will fall back with the recorded reason


# ---------------------------------------------------------------------------
# Kernel runtime helpers (the emitted source calls these)
# ---------------------------------------------------------------------------


def _ck(a):
    """Exactness guard on every ``+ - *`` result (NaN-safe)."""
    if not np.all(np.abs(a) < _LIMIT):
        raise VectorFallback("magnitude")
    return a


def _and(mask, cond, b):
    """AND a guard into the row mask (scalar conditions broadcast)."""
    cond = np.asarray(cond)
    if cond.ndim == 0:
        cond = np.full(b.n, bool(cond))
    return cond if mask is None else mask & cond


def _nz(a):
    """Vectorized ``not is_zero``: exact for int-originated float values."""
    return np.abs(np.asarray(a)) > _EPS


def _zz(a):
    """Lift-binding normalization: zero-ish coerces to 0 (NormOrZero)."""
    a = np.asarray(a, dtype=np.float64)
    return np.where(np.abs(a) <= _EPS, 0.0, a)


def _vdiv(a, b):
    """Vectorized :func:`repro.core.values.div`: zero denominator yields 0."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    a, b = np.broadcast_arrays(a, b)
    zero = np.abs(b) <= _EPS
    out = a / np.where(zero, 1.0, b)
    return np.where(zero, 0.0, out)


def _numeric_table_ok(table) -> bool:
    """Epoch-cached regime check of a probed table's stored values."""
    cached = table._vector_cache
    if cached is not None and cached[0] == table.write_epoch:
        return cached[1]
    ok = True
    for value in table.primary.values():
        t = type(value)
        if t is int:
            if not -(2**53) < value < 2**53:
                ok = False
                break
        elif t is not float:
            ok = False
            break
    table._vector_cache = (table.write_epoch, ok)
    return ok


def _vprobe0(table, b):
    """Nullary primary probe broadcast over the batch."""
    value = table.primary.get(_EMPTY_ROW)
    found = value is not None
    if value is None:
        value = 0.0
    else:
        value = _probe_value(value)
    return (
        np.full(b.n, value, dtype=np.float64),
        np.full(b.n, found, dtype=bool),
    )


def _probe_value(value) -> float:
    t = type(value)
    if t is float:
        return value
    if t is int:
        if not -(2**53) < value < 2**53:
            raise VectorFallback("probe-magnitude")
        return float(value)
    raise VectorFallback("probe-value")


def _vprobe(table, b, entries):
    """Bound-key primary probe gather: ``(values float64, found bool)``.

    ``entries`` are name-sorted ``(column, array)`` pairs.  Keys factorize
    through a per-call dict so each distinct key probes the primary once.
    """
    if not _numeric_table_ok(table):
        raise VectorFallback("probe-table")
    columns = tuple(c for c, _ in entries)
    lists = []
    for _, arr in entries:
        arr = np.asarray(arr)
        lists.append(arr.tolist())
    primary = table.primary
    n = b.n
    values = np.empty(n, dtype=np.float64)
    found = np.empty(n, dtype=bool)
    cache: dict[tuple, tuple[float, bool]] = {}
    for i in range(n):
        key = tuple(column_list[i] for column_list in lists)
        hit = cache.get(key)
        if hit is None:
            stored = primary.get(Row.from_sorted_items(tuple(zip(columns, key))))
            if stored is None:
                hit = (0.0, False)
            else:
                hit = (_probe_value(stored), True)
            cache[key] = hit
        values[i] = hit[0]
        found[i] = hit[1]
    return values, found


def _range_view(index):
    """(keys, prefix) ndarrays of an exact ordered index, cached per refresh.

    Returns None whenever the vectorized probe would not be exact: broken or
    inexact index, Fraction totals, keys outside int/float/str, or prefix
    magnitudes at 2**53.
    """
    if index._broken or index._inexact_rows or index._needs_rebuild:
        return None
    if not index._refresh_arrays():
        return None
    stamp = (index.rebuilds, index.refreshes)
    cached = index._array_view
    if cached is not None and cached[0] == stamp:
        return cached[1]
    view = None
    keys = index._keys
    prefix = index._prefix
    if all(type(k) is int or type(k) is float for k in keys):
        if not any(
            type(k) is int and not -(2**53) < k < 2**53 for k in keys
        ):
            view = (np.array(keys, dtype=np.float64), None)
    elif all(type(k) is str for k in keys):
        view = (np.array(keys), None)
    if view is not None:
        if all(type(p) is int for p in prefix):
            try:
                prefix_arr = np.array(prefix, dtype=np.int64)
            except OverflowError:
                prefix_arr = None
            if prefix_arr is not None and np.all(np.abs(prefix_arr) < _LIMIT):
                view = (view[0], prefix_arr)
            else:
                view = None
        else:
            view = None
    index._array_view = (stamp, view)
    return view


#: op -> (searchsorted side, sum the suffix); mirrors ordered._PROBE_OPS.
_RANGE_SIDES = {
    ">": ("right", True),
    ">=": ("left", True),
    "<": ("left", False),
    "<=": ("right", False),
}


def _vrange(table, column, op, cutoff, b):
    """Vectorized ``range_sum``: prefix-sum probes against the ordered index."""
    index = table.range_index(column)
    if index.wants_rebuild:
        index.rebuild(table.primary.items())
    spec = _RANGE_SIDES.get(op)
    if spec is None:
        raise VectorFallback("range-op")
    view = _range_view(index)
    if view is None:
        raise VectorFallback("range-index")
    keys, prefix = view
    cutoff = np.asarray(cutoff)
    if keys.dtype.kind == "U":
        if cutoff.dtype.kind != "U":
            raise VectorFallback("range-cutoff")
    elif cutoff.dtype.kind not in "if" or (
        cutoff.dtype.kind == "f" and not np.all(np.isfinite(cutoff))
    ):
        raise VectorFallback("range-cutoff")
    side, suffix = spec
    at = np.searchsorted(keys, cutoff, side=side)
    total = (prefix[-1] - prefix[at]) if suffix else prefix[at]
    probes = b.n
    table.range_probes += probes
    index.probes += probes
    out = np.asarray(total, dtype=np.float64)
    if out.ndim == 0:
        out = np.full(b.n, float(out))
    return out


_EMPTY_ROW = Row()

# ---------------------------------------------------------------------------
# Expression translation (scalar Python source -> array source)
# ---------------------------------------------------------------------------


class _ExprTranslator:
    """Rewrites lowered scalar expression source into array expressions.

    Numeric context computes in float64 with :func:`_ck` wrapped around every
    ``+ - *`` result; comparison operands that are bare event columns or
    string constants stay *raw* (int64 comparisons integer-exact, ``'<U'``
    arrays support lexicographic compare against ``str``).
    """

    _NUM_OPS = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*"}
    _CMP_OPS = {
        ast.Eq: "==", ast.NotEq: "!=", ast.Lt: "<", ast.LtE: "<=",
        ast.Gt: ">", ast.GtE: ">=",
    }

    def __init__(self, event_locals: Mapping[str, int], scalar_locals: set,
                 env: Mapping[str, Any]) -> None:
        self.event_locals = event_locals
        self.scalar_locals = scalar_locals
        self.env = env
        self.uses: list[tuple[str, Any]] = []
        self.consts: dict[str, Any] = {}

    def numeric(self, source: str) -> str:
        return self._tx(ast.parse(source, mode="eval").body)

    def condition(self, source: str) -> str:
        node = ast.parse(source, mode="eval").body
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            return self._tx(node)
        left = self._operand(node.left)
        right = self._operand(node.comparators[0])
        op = self._CMP_OPS.get(type(node.ops[0]))
        if op is None:
            raise Unsupported("comparison operator")
        return f"({left} {op} {right})"

    def _operand(self, node: ast.expr) -> str:
        """A comparison operand: raw when it is a bare column or string."""
        if isinstance(node, ast.Name):
            index = self.event_locals.get(node.id)
            if index is not None:
                self.uses.append(("raw", index))
                return f"_b.raw({index})"
            value = self._env_const(node.id, _MISSING)
            if isinstance(value, str):
                self.consts[node.id] = value
                return node.id
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return repr(node.value)
        return self._tx(node)

    def _env_const(self, name: str, default):
        if name in self.scalar_locals or name in self.event_locals:
            return default
        return self.env.get(name, default)

    def _tx(self, node: ast.expr) -> str:
        if isinstance(node, ast.Name):
            index = self.event_locals.get(node.id)
            if index is not None:
                self.uses.append(("num", index))
                return f"_b.num({index})"
            if node.id in self.scalar_locals:
                return node.id
            value = self._env_const(node.id, _MISSING)
            if value is _MISSING:
                raise Unsupported(f"unknown local {node.id!r}")
            return self._const(value)
        if isinstance(node, ast.Constant):
            return self._const(node.value)
        if isinstance(node, ast.BinOp):
            op = self._NUM_OPS.get(type(node.op))
            if op is None:
                raise Unsupported("arithmetic operator")
            return f"_ck(({self._tx(node.left)} {op} {self._tx(node.right)}))"
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return f"(-{self._tx(node.operand)})"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "_div" and len(node.args) == 2:
                return f"_vdiv({self._tx(node.args[0])}, {self._tx(node.args[1])})"
            raise Unsupported(f"call to {node.func.id!r}")
        if isinstance(node, ast.Compare):
            raise Unsupported("comparison outside a guard")
        raise Unsupported(f"expression node {type(node).__name__}")

    def _const(self, value) -> str:
        if type(value) is bool:
            return repr(int(value))
        if type(value) is int:
            if not -(2**53) < value < 2**53:
                raise Unsupported("integer literal at 2**53")
            return repr(value)
        if type(value) is float:
            return repr(value)
        raise Unsupported(f"constant of type {type(value).__name__}")


def _parse_key_expr(key_expr: str) -> list[tuple[str, str]] | None:
    """``_Row((('col', local), ...))`` -> [(col, local)]; None for _EMPTY_ROW."""
    if key_expr == "_EMPTY_ROW":
        return None
    node = ast.parse(key_expr, mode="eval").body
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "_Row" and len(node.args) == 1):
        raise Unsupported("sink key is not a row build")
    entries = []
    tup = node.args[0]
    if not isinstance(tup, ast.Tuple):
        raise Unsupported("sink key shape")
    for item in tup.elts:
        if not (isinstance(item, ast.Tuple) and len(item.elts) == 2
                and isinstance(item.elts[0], ast.Constant)
                and isinstance(item.elts[1], ast.Name)):
            raise Unsupported("sink key component")
        entries.append((item.elts[0].value, item.elts[1].id))
    return entries


# ---------------------------------------------------------------------------
# The vector statement compiler
# ---------------------------------------------------------------------------


class VectorKernel:
    """One statement's columnar batch kernel: emitted source plus sink spec."""

    __slots__ = ("statement", "source", "uses", "key_positions", "key_columns",
                 "_code", "_env", "_tables")

    def __init__(self, statement: Statement, source: str, env: dict,
                 tables: Sequence[tuple[str, str, str]],
                 uses: Sequence[tuple[str, Any]],
                 key_positions: tuple[int, ...],
                 key_columns: tuple[str, ...]) -> None:
        self.statement = statement
        self.source = source
        self.uses = tuple(uses)
        self.key_positions = key_positions
        self.key_columns = key_columns
        self._code = compile(source, f"<repro.vector:{statement.target}>", "exec")
        self._env = env
        self._tables = tuple(tables)

    def bind(self, maps, database) -> "BoundVectorKernel":
        namespace = dict(self._env)
        for handle, kind, name in self._tables:
            namespace[handle] = (
                maps.table(name) if kind == "map" else database.table(name)
            )
        exec(self._code, namespace)
        return BoundVectorKernel(self, namespace["_vkernel"])


class BoundVectorKernel:
    """A linked vector kernel: compute the write list, then commit it."""

    __slots__ = ("spec", "_fn")

    def __init__(self, spec: VectorKernel, fn: Callable) -> None:
        self.spec = spec
        self._fn = fn

    def compute(self, batch: ColumnBatch, table) -> list[tuple[Row, float]]:
        """Run the kernel and build the ordered write list (no mutations)."""
        mask, acc = self._fn(batch)
        deltas = np.asarray(acc, dtype=np.float64)
        if deltas.ndim == 0:
            deltas = np.full(batch.n, float(deltas))
        deltas = _ck(deltas * batch.mults())
        if mask is not None:
            selected = np.flatnonzero(mask)
            if selected.size == 0:
                return []
            deltas = deltas[selected]
        else:
            selected = None
        primary = table.primary
        spec = self.spec
        if not spec.key_positions and not spec.key_columns:
            seed = _seed_value(primary.get(_EMPTY_ROW))
            return [(_EMPTY_ROW, _chain(seed, deltas))]
        rows, inverse = batch.key_groups(spec.key_positions, spec.key_columns)
        if selected is not None:
            inverse = inverse[selected]
        count = len(inverse)
        order = np.argsort(inverse, kind="stable")
        inv_sorted = inverse[order]
        d_sorted = deltas[order]
        starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(inv_sorted)) + 1, [count])
        )
        n_segments = len(starts) - 1
        writes: list[tuple[Row, float]] = []
        if n_segments > _MAX_SEGMENTS:
            if count != n_segments:
                raise VectorFallback("segments")
            # Every key occurs once: one exact seeded add, fully vectorized.
            ids = inv_sorted
            seeds = np.empty(n_segments, dtype=np.float64)
            for j, u in enumerate(ids.tolist()):
                seeds[j] = _seed_value(primary.get(rows[u]))
            totals = seeds + d_sorted
            if not np.all(np.abs(totals) < _LIMIT):
                raise VectorFallback("magnitude")
            firsts = order  # singleton segments: sorted position = first use
            commit_order = np.argsort(firsts, kind="stable")
            total_list = totals.tolist()
            for j in commit_order.tolist():
                writes.append((rows[ids[j]], total_list[j]))
            return writes
        firsts = np.full(len(rows), count, dtype=np.int64)
        np.minimum.at(firsts, inverse, np.arange(count))
        segments = []
        for j in range(n_segments):
            u = int(inv_sorted[starts[j]])
            seed = _seed_value(primary.get(rows[u]))
            partials = np.cumsum(
                np.concatenate(([seed], d_sorted[starts[j]:starts[j + 1]]))
            )[1:]
            if not np.all(np.abs(partials) < _LIMIT):
                raise VectorFallback("magnitude")
            if partials.size > 1 and np.any(np.abs(partials[:-1]) <= _EPS):
                # The scalar chain would delete and re-insert this key,
                # moving it to the end of the dict: insertion-order hazard.
                raise VectorFallback("interzero")
            segments.append((int(firsts[u]), rows[u], float(partials[-1])))
        segments.sort(key=lambda entry: entry[0])
        return [(row, total) for _, row, total in segments]

    def commit(self, table, writes: list[tuple[Row, float]]) -> None:
        set_total = table.set_total
        for row, total in writes:
            set_total(row, total)


def _seed_value(stored) -> float:
    if stored is None:
        return 0.0
    t = type(stored)
    if t is int or t is float:
        if not -(2**53) < stored < 2**53:
            raise VectorFallback("seed-magnitude")
        return float(stored)
    raise VectorFallback("seed-type")


def _chain(seed: float, deltas) -> float:
    partials = np.cumsum(np.concatenate(([seed], deltas)))[1:]
    if not np.all(np.abs(partials) < _LIMIT):
        raise VectorFallback("magnitude")
    if partials.size > 1 and np.any(np.abs(partials[:-1]) <= _EPS):
        raise VectorFallback("interzero")
    return float(partials[-1])


_KERNEL_GLOBALS = {
    "np": None, "_ck": _ck, "_and": _and, "_nz": _nz, "_zz": _zz,
    "_vdiv": _vdiv, "_vprobe": _vprobe, "_vprobe0": _vprobe0,
    "_vrange": _vrange,
}


def compile_vector(statement: Statement, program: TriggerProgram) -> VectorKernel:
    """Compile one ``+=`` statement into a columnar batch kernel.

    Only the straight-line "direct" statement shape vectorizes: a single
    product term whose target is unread by its own trigger.  Anything with a
    loop, branch, merge accumulator or grouped aggregate stays scalar — the
    compile attempt *is* the capability check, exactly like the scalar
    pipeline.  Raises :class:`Unsupported` with the blocking construct.
    """
    if np is None:
        raise Unsupported(_NUMPY_REASON or "numpy unavailable")
    if statement.operation != INCREMENT:
        raise Unsupported("not an increment statement")
    from repro.codegen.statement import _StatementCompiler

    compiler = _StatementCompiler(statement, program, scale_var=None)
    body = compiler.compile()
    ctx = compiler.ctx
    nodes = ctx.preamble() + body

    event_locals: dict[str, int] = {}
    methods: dict[str, tuple[str, str]] = {}
    scalar_locals: set = set()
    handles = {handle: (kind, name) for handle, kind, name in ctx.tables}
    tx = _ExprTranslator(event_locals, scalar_locals, ctx.env.env)
    lines = ["def _vkernel(_b):", "    _mask = None"]
    sink: tuple | None = None

    for node in nodes:
        kind = node.kind
        if kind == "event_load":
            event_locals[node.local] = node.index
        elif kind == "bind_method":
            if node.attr not in ("add", "range_sum"):
                raise Unsupported(f"method {node.attr!r}")
            methods[node.local] = (node.handle, node.attr)
        elif kind == "norm":
            lines.append(f"    {node.local} = {tx.numeric(node.expr)}")
            scalar_locals.add(node.local)
        elif kind == "lift_bind":
            lines.append(f"    {node.local} = _zz({tx.numeric(node.expr)})")
            scalar_locals.add(node.local)
        elif kind == "let":
            lines.append(f"    {node.local} = {tx.numeric(node.expr)}")
            scalar_locals.add(node.local)
        elif kind == "guard_zero":
            lines.append(
                f"    _mask = _and(_mask, _nz({tx.numeric(node.expr)}), _b)"
            )
        elif kind == "guard_cond":
            lines.append(
                f"    _mask = _and(_mask, {tx.condition(node.expr)}, _b)"
            )
        elif kind == "guard_eq":
            left = tx.numeric(node.left)
            right = tx.numeric(node.right)
            lines.append(f"    _mask = _and(_mask, ({left} == {right}), _b)")
        elif kind == "primary_probe":
            if node.handle not in handles:
                raise Unsupported("unknown probe handle")
            entries = _parse_key_expr(node.key_expr)
            if entries is None:
                call = f"_vprobe0({node.handle}, _b)"
            else:
                parts = ", ".join(
                    f"({col!r}, {tx.numeric(local)})" for col, local in entries
                )
                call = f"_vprobe({node.handle}, _b, ({parts},))"
            lines.append(f"    {node.local}, {node.local}_f = {call}")
            scalar_locals.add(node.local)
            scalar_locals.add(f"{node.local}_f")
        elif kind == "guard_none":
            lines.append(f"    _mask = _and(_mask, {node.local}_f, _b)")
        elif kind == "default_zero":
            pass  # missing probes already gathered as 0.0
        elif kind == "range_probe":
            resolved = methods.get(node.probe_local)
            if resolved is None or resolved[1] != "range_sum":
                raise Unsupported("range probe handle")
            cutoff = tx.numeric(node.cutoff_expr)
            lines.append(
                f"    {node.local} = _vrange({resolved[0]}, "
                f"{node.column!r}, {node.op!r}, {cutoff}, _b)"
            )
            scalar_locals.add(node.local)
        elif kind == "sink_add":
            if sink is not None:
                raise Unsupported("multiple sinks")
            resolved = methods.get(node.add_local)
            if resolved is None or resolved[1] != "add":
                raise Unsupported("sink handle")
            entries = _parse_key_expr(node.key_expr)
            if entries is None:
                key_positions: tuple[int, ...] = ()
                key_columns: tuple[str, ...] = ()
            else:
                positions, columns = [], []
                for column, local in entries:
                    index = event_locals.get(local)
                    if index is None:
                        # Computed keys would store float-typed values
                        # into key rows; only raw event columns keep the
                        # stored key types bit-identical.
                        raise Unsupported("sink key is not an event column")
                    positions.append(index)
                    columns.append(column)
                key_positions = tuple(positions)
                key_columns = tuple(columns)
                tx.uses.append(("key", (key_positions, key_columns)))
            value = tx.numeric(node.value_expr)
            lines.append(f"    return _mask, {value}")
            sink = (key_positions, key_columns)
        else:
            raise Unsupported(f"IR node {kind!r}")
    if sink is None:
        raise Unsupported("no sink")

    env = dict(_KERNEL_GLOBALS)
    env["np"] = np
    env.update(tx.consts)
    uses = list(dict.fromkeys(tx.uses))
    uses.append(("mults", None))
    return VectorKernel(
        statement, "\n".join(lines) + "\n", env, ctx.tables, uses,
        sink[0], sink[1],
    )


def try_compile_vector(
    statement: Statement, program: TriggerProgram
) -> VectorKernel | None:
    """:func:`compile_vector`, with Unsupported collapsed to None."""
    try:
        return compile_vector(statement, program)
    except Unsupported:
        return None

