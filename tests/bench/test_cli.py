"""Tests for the benchmark command-line interface."""

import pytest

from repro.bench.__main__ import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "Q3" in out and "VWAP" in out and "MDDB1" in out


def test_features_command(capsys):
    assert main(["features"]) == 0
    out = capsys.readouterr().out
    assert "Query" in out and "maps" in out


def test_rates_command_small(capsys):
    code = main(
        ["rates", "--queries", "Q6", "--strategies", "dbtoaster", "ivm",
         "--events", "80", "--budget", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Q6" in out and "dbtoaster" in out


def test_trace_command_small(capsys):
    code = main(["trace", "Q6", "--strategies", "dbtoaster", "--events", "80", "--samples", "4"])
    assert code == 0
    assert "trace for Q6" in capsys.readouterr().out


def test_ablation_command_small(capsys):
    code = main(["ablation", "Q6", "--events", "60"])
    assert code == 0
    assert "refreshes/s" in capsys.readouterr().out


def test_missing_command_is_an_error():
    with pytest.raises(SystemExit):
        main([])


def test_batch_sweep_command_small(capsys):
    code = main(["batch", "--query", "Q6", "--batch-sizes", "1", "20",
                 "--events", "100", "--budget", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "batch-20" in out and "speedup" in out


def test_rates_command_with_scale_out_strategies(capsys):
    code = main(
        ["rates", "--queries", "Q6", "--strategies", "dbtoaster", "dbtoaster-batch",
         "dbtoaster-par", "--events", "60", "--budget", "2",
         "--batch-size", "10", "--partitions", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "dbtoaster-batch" in out and "dbtoaster-par" in out


def test_stats_command_small(capsys):
    code = main(["stats", "Q6", "--events", "60"])
    assert code == 0
    out = capsys.readouterr().out
    assert "entries" in out and "memory" in out


def test_stats_command_partitioned(capsys):
    code = main(["stats", "Q6", "--strategy", "dbtoaster-par",
                 "--partitions", "2", "--events", "60"])
    assert code == 0
    out = capsys.readouterr().out
    assert "partition 0" in out and "partition 1" in out


def test_codegen_command_writes_json_and_gates(capsys, tmp_path):
    import json

    output = tmp_path / "BENCH_codegen.json"
    # Tiny event counts make the fused/per-statement ratio (and the
    # telemetry overhead) pure timer noise, so those gates are disabled
    # everywhere they are not themselves under test.
    code = main(["codegen", "--queries", "Q6", "--events", "150",
                 "--budget", "3", "--output", str(output),
                 "--min-fused-speedup", "0", "--max-telemetry-overhead", "inf",
                 "--max-provenance-overhead", "inf"])
    assert code == 0
    out = capsys.readouterr().out
    assert "compiled vs interpreted" in out and "Q6" in out
    payload = json.loads(output.read_text())
    assert payload["Q6"]["compiled_statements"] > 0
    assert payload["Q6"]["fallback_statements"] == 0
    assert payload["Q6"]["compiled_rate"] > 0
    # The fused record rides along: rate, speedup and fusion statistics.
    assert payload["Q6"]["fused_rate"] > 0
    assert payload["Q6"]["fused_speedup"] > 0
    assert payload["Q6"]["fused_kernels"] > 0
    # An absurd bound trips the regression gate on a fully-compiled query.
    code = main(["codegen", "--queries", "Q6", "--events", "80", "--budget", "2",
                 "--output", "-", "--min-speedup", "1e9",
                 "--min-fused-speedup", "0", "--max-telemetry-overhead", "inf"])
    assert code == 2
    # ... and an absurd fused bound trips the fusion regression gate.
    code = main(["codegen", "--queries", "Q6", "--events", "80", "--budget", "2",
                 "--output", "-", "--min-fused-speedup", "1e9",
                 "--max-telemetry-overhead", "inf"])
    assert code == 2
    assert "fusion throughput regression" in capsys.readouterr().out
    # ... and an impossible overhead bound trips the telemetry overhead gate.
    code = main(["codegen", "--queries", "Q6", "--events", "80", "--budget", "2",
                 "--output", "-", "--min-fused-speedup", "0",
                 "--max-telemetry-overhead", "-1"])
    assert code == 2
    assert "telemetry overhead regression" in capsys.readouterr().out


def test_codegen_command_exempts_fallback_dominated_queries(capsys, monkeypatch):
    # A query dominated by interpreter fallbacks must not trip the gate even
    # with an unreachable bound.  Every in-tree query compiles fully now, so
    # force the fallback by refusing compilation outright.
    import repro.codegen.statement as statement_module

    monkeypatch.setattr(
        statement_module, "try_compile_statement", lambda statement, program: None
    )
    code = main(["codegen", "--queries", "VWAP", "--events", "60", "--budget", "2",
                 "--output", "-", "--min-speedup", "1e9",
                 "--max-telemetry-overhead", "inf",
                 "--max-provenance-overhead", "inf"])
    assert code == 0


def test_finance_command_requires_compiled(capsys, tmp_path):
    # The finance sweep must report zero fallbacks on the nested-aggregate
    # queries and honor the compilation gate.
    output = tmp_path / "BENCH_finance.json"
    code = main(["finance", "--queries", "VWAP", "--events", "120", "--budget", "3",
                 "--output", str(output), "--require-compiled", "VWAP",
                 "--min-fused-speedup", "0", "--max-telemetry-overhead", "inf",
                 "--max-provenance-overhead", "inf"])
    assert code == 0
    import json

    record = json.loads(output.read_text())
    assert record["VWAP"]["fallback_statements"] == 0


def test_finance_command_rejects_unknown_required_queries(capsys):
    # A required query absent from the sweep must fail the gate, not pass it.
    code = main(["finance", "--queries", "VWAP", "--events", "60", "--budget", "2",
                 "--output", "-", "--require-compiled", "VWAp",
                 "--max-telemetry-overhead", "inf"])
    assert code == 3
    assert "gate error" in capsys.readouterr().out


def test_finance_command_fallback_gate_trips(capsys, monkeypatch):
    import repro.codegen.statement as statement_module

    monkeypatch.setattr(
        statement_module, "try_compile_statement", lambda statement, program: None
    )
    code = main(["finance", "--queries", "VWAP", "--events", "60", "--budget", "2",
                 "--output", "-", "--require-compiled", "VWAP",
                 "--max-telemetry-overhead", "inf"])
    assert code == 3
    assert "fallback regression" in capsys.readouterr().out


def test_codegen_command_reports_the_durable_axis(capsys, tmp_path):
    import json

    output = tmp_path / "BENCH_codegen.json"
    # Q1 is the durability query: the sweep adds the WAL-backed service run.
    # Tiny event counts make every ratio timer noise, so all other gates are
    # disabled and the WAL gate set to 'inf' for the passing run.
    code = main(["codegen", "--queries", "Q1", "--events", "200", "--budget", "3",
                 "--output", str(output), "--min-fused-speedup", "0",
                 "--max-telemetry-overhead", "inf",
                 "--max-provenance-overhead", "inf",
                 "--max-wal-overhead", "inf"])
    assert code == 0
    out = capsys.readouterr().out
    assert "wal ovh" in out
    payload = json.loads(output.read_text())
    assert payload["Q1"]["durable_rate"] > 0
    assert payload["Q1"]["wal_fsyncs"] > 0
    assert payload["Q1"]["wal_bytes"] > 0
    assert "wal_overhead" in payload["Q1"]
    # An impossible bound trips the durable ingest gate.
    code = main(["codegen", "--queries", "Q1", "--events", "100", "--budget", "2",
                 "--output", "-", "--min-fused-speedup", "0",
                 "--max-telemetry-overhead", "inf",
                 "--max-provenance-overhead", "inf",
                 "--max-wal-overhead", "-1"])
    assert code == 2
    assert "durable ingest overhead regression" in capsys.readouterr().out


def test_durability_command_writes_json_and_gates(capsys, tmp_path):
    import json

    output = tmp_path / "BENCH_durability.json"
    code = main(["durability", "--query", "Q1", "--events", "2000",
                 "--ingest-batch", "100", "--checkpoint-every", "4",
                 "--output", str(output), "--min-recovery-speedup", "0"])
    assert code == 0
    out = capsys.readouterr().out
    assert "durability run: Q1" in out and "recovery speedup" in out
    payload = json.loads(output.read_text())
    assert payload["recovered_version"] == 2000
    assert payload["restored_from_checkpoint"] is True
    assert payload["wal_batches_replayed"] >= 1
    assert payload["durable_ingest_rate"] > 0
    assert payload["wal"]["fsyncs"] > 0
    assert payload["recovery_speedup"] > 0
    # An absurd bound trips the recovery-time gate.
    code = main(["durability", "--query", "Q1", "--events", "600",
                 "--ingest-batch", "100", "--checkpoint-every", "2",
                 "--output", "-", "--min-recovery-speedup", "1e9"])
    assert code == 2
    assert "recovery-time regression" in capsys.readouterr().out


def test_rates_command_with_compiled_strategy(capsys):
    code = main(["rates", "--queries", "Q6", "--strategies", "dbtoaster",
                 "dbtoaster-comp", "--events", "60", "--budget", "2"])
    assert code == 0
    assert "dbtoaster-comp" in capsys.readouterr().out


def test_service_command_small(capsys):
    assert main([
        "service", "--query", "Q1", "--engine", "incremental",
        "--events", "150", "--ingest-chunk", "50",
    ]) == 0
    out = capsys.readouterr().out
    assert "service run: Q1" in out
    assert "final served version: 150" in out
