"""Tests for the benchmark command-line interface."""

import pytest

from repro.bench.__main__ import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "Q3" in out and "VWAP" in out and "MDDB1" in out


def test_features_command(capsys):
    assert main(["features"]) == 0
    out = capsys.readouterr().out
    assert "Query" in out and "maps" in out


def test_rates_command_small(capsys):
    code = main(
        ["rates", "--queries", "Q6", "--strategies", "dbtoaster", "ivm",
         "--events", "80", "--budget", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Q6" in out and "dbtoaster" in out


def test_trace_command_small(capsys):
    code = main(["trace", "Q6", "--strategies", "dbtoaster", "--events", "80", "--samples", "4"])
    assert code == 0
    assert "trace for Q6" in capsys.readouterr().out


def test_ablation_command_small(capsys):
    code = main(["ablation", "Q6", "--events", "60"])
    assert code == 0
    assert "refreshes/s" in capsys.readouterr().out


def test_missing_command_is_an_error():
    with pytest.raises(SystemExit):
        main([])


def test_batch_sweep_command_small(capsys):
    code = main(["batch", "--query", "Q6", "--batch-sizes", "1", "20",
                 "--events", "100", "--budget", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "batch-20" in out and "speedup" in out


def test_rates_command_with_scale_out_strategies(capsys):
    code = main(
        ["rates", "--queries", "Q6", "--strategies", "dbtoaster", "dbtoaster-batch",
         "dbtoaster-par", "--events", "60", "--budget", "2",
         "--batch-size", "10", "--partitions", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "dbtoaster-batch" in out and "dbtoaster-par" in out


def test_stats_command_small(capsys):
    code = main(["stats", "Q6", "--events", "60"])
    assert code == 0
    out = capsys.readouterr().out
    assert "entries" in out and "memory" in out


def test_stats_command_partitioned(capsys):
    code = main(["stats", "Q6", "--strategy", "dbtoaster-par",
                 "--partitions", "2", "--events", "60"])
    assert code == 0
    out = capsys.readouterr().out
    assert "partition 0" in out and "partition 1" in out


def test_service_command_small(capsys):
    assert main([
        "service", "--query", "Q1", "--engine", "incremental",
        "--events", "150", "--ingest-chunk", "50",
    ]) == 0
    out = capsys.readouterr().out
    assert "service run: Q1" in out
    assert "final served version: 150" in out
