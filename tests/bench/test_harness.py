"""Tests for the measurement harness."""

from repro.agca.builders import agg, prod, rel
from repro.bench.harness import measure_refresh_rate, run_trace
from repro.compiler.hoivm import compile_query
from repro.delta.events import insert
from repro.runtime.engine import IncrementalEngine
from repro.streams.agenda import Agenda

SCHEMAS = {"R": ("a",), "S": ("b",)}


def make_engine():
    return IncrementalEngine(compile_query(agg((), prod(rel("R", "a"), rel("S", "b"))), SCHEMAS, name="Q"))


def make_agenda(n=60):
    agenda = Agenda()
    for i in range(n):
        agenda.append(insert("R" if i % 2 else "S", i))
    return agenda


def test_measure_refresh_rate_processes_whole_stream():
    result = measure_refresh_rate(make_engine(), make_agenda(), strategy="dbtoaster", query="Q")
    assert result.completed
    assert result.events_processed == 60
    assert result.refresh_rate > 0
    assert result.memory_bytes > 0
    assert result.strategy == "dbtoaster" and result.query == "Q"


def test_measure_refresh_rate_respects_event_cap():
    result = measure_refresh_rate(make_engine(), make_agenda(), max_events=10)
    assert result.events_processed == 10
    assert result.completed


def test_measure_refresh_rate_timeout_marks_incomplete():
    class SlowEngine:
        def apply(self, event):
            import time

            time.sleep(0.02)

        def memory_bytes(self):
            return 0

    result = measure_refresh_rate(SlowEngine(), make_agenda(100), max_seconds=0.1)
    assert not result.completed
    assert result.events_processed < 100


def test_run_trace_samples_points():
    trace = run_trace(make_engine(), make_agenda(80), samples=8, strategy="dbtoaster", query="Q")
    assert trace.completed
    assert len(trace.points) >= 8
    assert trace.points[-1].fraction == 1.0
    assert trace.total_seconds > 0
    fractions = [p.fraction for p in trace.points]
    assert fractions == sorted(fractions)


def test_run_trace_empty_stream():
    trace = run_trace(make_engine(), Agenda(), samples=4)
    assert trace.points == [] and trace.total_seconds == 0.0


def test_static_tables_are_loaded_before_measurement():
    schemas = {"R": ("a",), "N": ("k",)}
    query = agg((), prod(rel("R", "a"), rel("N", "a")))
    program = compile_query(query, schemas, static_relations=("N",), name="Q")
    engine = IncrementalEngine(program)
    agenda = Agenda([insert("R", 1), insert("R", 2)])
    result = measure_refresh_rate(engine, agenda, static={"N": [(1,)]}, query="Q")
    assert result.completed
    assert engine.scalar_result("Q") == 1
