"""Tests for benchmark report formatting."""

from repro.bench.harness import RunResult, TracePoint, TraceResult
from repro.bench.report import (
    format_feature_table,
    format_refresh_rate_table,
    format_scaling_table,
    format_speedup_summary,
    format_trace,
)


def result(strategy, query, events, seconds):
    return RunResult(strategy, query, events, seconds, memory_bytes=1024, completed=True)


def test_refresh_rate_table_contains_all_cells():
    results = {
        "Q1": {"dbtoaster": result("dbtoaster", "Q1", 1000, 0.1), "rep": result("rep", "Q1", 10, 1.0)},
        "Q2": {"dbtoaster": result("dbtoaster", "Q2", 500, 0.5)},
    }
    table = format_refresh_rate_table(results, ("dbtoaster", "rep"))
    assert "Q1" in table and "Q2" in table
    assert "10,000" in table  # 1000 events / 0.1 s
    assert "-" in table  # missing Q2/rep cell


def test_speedup_summary():
    results = {
        "Q1": {"dbtoaster": result("dbtoaster", "Q1", 1000, 1.0), "rep": result("rep", "Q1", 10, 1.0)}
    }
    text = format_speedup_summary(results, baseline="rep")
    assert "100.0x" in text


def test_trace_formatting():
    trace = TraceResult("dbtoaster", "Q3", [TracePoint(0.5, 1.0, 2000.0, 2048)], completed=False)
    text = format_trace(trace)
    assert "Q3" in text and "timed out" in text and "2000.0" in text


def test_scaling_table_is_relative_to_base():
    results = {
        "Q1": {
            1.0: result("dbtoaster", "Q1", 1000, 1.0),
            2.0: result("dbtoaster", "Q1", 900, 1.0),
        }
    }
    table = format_scaling_table(results, base_scale=1.0)
    assert "1.00" in table and "0.90" in table


def test_feature_table_lists_queries_and_columns():
    table = format_feature_table({"Q1": {"tables": 1, "join": "none", "maps": 11}})
    assert "Q1" in table and "tables" in table and "11" in table


def test_service_run_formatting():
    from repro.bench.report import format_service_run
    from repro.bench.scenarios import ServiceRunResult

    run = ServiceRunResult(
        query="Q1", engine_mode="batched", events=500, elapsed_seconds=0.5,
        queries=3, latencies_ms=(1.0, 2.0, 9.0), staleness=(0, 30, 4),
        final_version=500,
    )
    text = format_service_run(run)
    assert "Q1" in text and "batched" in text
    assert "1,000" in text  # 500 events / 0.5 s
    assert "max 30" in text
