"""Tests for the per-figure benchmark scenarios (small parameters)."""

import pytest

from repro.bench.scenarios import (
    run_ablation,
    run_refresh_rate_table,
    run_scaling,
    run_trace_figure,
    workload_feature_table,
)
from repro.bench.strategies import STRATEGIES, build_engine
from repro.errors import BenchmarkError
from repro.workloads import workload


def test_refresh_rate_table_small_run():
    results = run_refresh_rate_table(
        queries=["Q6", "VWAP"],
        strategies=("dbtoaster", "ivm"),
        events=120,
        max_seconds_per_run=2.0,
    )
    assert set(results) == {"Q6", "VWAP"}
    for per_query in results.values():
        assert set(per_query) == {"dbtoaster", "ivm"}
        assert all(r.events_processed > 0 for r in per_query.values())


def test_trace_figure_small_run():
    traces = run_trace_figure("Q3", strategies=("dbtoaster",), events=150, samples=5)
    assert set(traces) == {"dbtoaster"}
    assert len(traces["dbtoaster"].points) >= 3


def test_scaling_scenario_small_run():
    results = run_scaling(queries=("Q6",), scales=(0.5, 1.0), events_per_scale_unit=100)
    assert set(results) == {"Q6"}
    assert set(results["Q6"]) == {0.5, 1.0}


def test_workload_feature_table_includes_compiler_summary():
    table = workload_feature_table(["Q3"])
    assert table["Q3"]["maps"] > 0
    assert "statements" in table["Q3"]


def test_ablation_variants_run_and_stay_correct():
    results = run_ablation(
        "Q3",
        variants={"full": {}, "no-decomposition": {"decomposition": False}},
        events=150,
        max_seconds_per_run=2.0,
    )
    assert set(results) == {"full", "no-decomposition"}


def test_build_engine_knows_all_documented_strategies():
    spec = workload("Q6")
    translated = spec.query_factory()
    for strategy in STRATEGIES:
        assert build_engine(strategy, translated) is not None
    with pytest.raises(BenchmarkError):
        build_engine("unknown", translated)


def test_service_freshness_scenario_small_run():
    from repro.bench.scenarios import run_service_freshness

    result = run_service_freshness(
        query="Q1", engine_mode="batched", events=200, ingest_chunk=40,
        engine_config={"batch_size": 20},
    )
    assert result.events == 200
    assert result.final_version == 200
    assert result.queries >= 1
    assert result.ingest_rate > 0
    assert all(lag >= 0 for lag in result.staleness)
