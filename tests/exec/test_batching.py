"""Tests for delta-batch folding, trigger safety analysis and BatchedEngine."""

import pytest

from repro.compiler.hoivm import compile_query
from repro.delta.events import delete, insert
from repro.errors import ExecutionError
from repro.exec import BatchPlan, BatchedEngine
from repro.runtime.engine import IncrementalEngine
from repro.workloads import workload


def _program(query_name):
    spec = workload(query_name)
    translated = spec.query_factory()
    return translated, compile_query(
        translated.roots(),
        translated.schemas(),
        static_relations=translated.static_relations(),
    )


def _replay(engine, spec, events):
    for relation, rows in spec.static_tables().items():
        engine.load_static(relation, rows)
    for event in events:
        engine.apply(event)
    return engine


# ---------------------------------------------------------------------------
# Safety analysis
# ---------------------------------------------------------------------------


def test_linear_tpch_triggers_are_bulk_safe():
    _, program = _program("Q1")
    plan = BatchPlan(program)
    assert plan.analysis("Lineitem", 1).safe
    assert plan.analysis("Lineitem", -1).safe
    # Q1's statements are scalar (map-free), so they all compile to closures.
    assert plan.analysis("Lineitem", 1).fast_increments
    assert not plan.analysis("Lineitem", 1).slow_increments


def test_join_trigger_reading_foreign_maps_is_bulk_safe():
    _, program = _program("Q3")
    plan = BatchPlan(program)
    # The Lineitem trigger reads Orders/Customer-derived maps but writes only
    # Lineitem-derived ones: bulk-safe, slow path (map lookups involved).
    analysis = plan.analysis("Lineitem", 1)
    assert analysis.safe
    assert analysis.slow_increments


def test_self_join_trigger_falls_back_to_per_event():
    _, program = _program("BSP")
    plan = BatchPlan(program)
    # Bids joins Bids: the trigger reads maps it writes, so bulk application
    # would read mid-batch state.  It must replay per event.
    assert not plan.analysis("Bids", 1).safe


def test_nested_aggregate_assigns_stay_bulk_safe():
    _, program = _program("VWAP")
    plan = BatchPlan(program)
    # VWAP's := re-evaluation statements depend only on post-batch map state
    # (not on the trigger variables), so running them once per batch is exact.
    analysis = plan.analysis("Bids", 1)
    assert analysis.safe
    assert analysis.assigns


# ---------------------------------------------------------------------------
# Folding
# ---------------------------------------------------------------------------


def test_fold_merges_runs_across_commuting_triggers():
    _, program = _program("Q1")
    plan = BatchPlan(program)
    spec = workload("Q1")
    agenda = spec.stream_factory(events=200)
    groups = plan.fold(list(agenda))
    # Q1 only touches Lineitem; every other TPC-H trigger is a no-op and
    # commutes, so the whole insert prefix folds into very few groups.
    assert len(groups) < 20
    assert sum(group.count for group in groups) == len(agenda)


def test_fold_folds_duplicate_tuples_with_multiplicity():
    _, program = _program("Q1")
    plan = BatchPlan(program)
    row = ("k", 1, 1, 1, 5, 10.0, 0.0, 0.0, "N", "O",
           "1995-01-01", "1995-01-01", "1995-01-01", "MAIL", "NONE")
    events = [insert("Lineitem", *row), insert("Lineitem", *row)]
    groups = plan.fold(events)
    assert len(groups) == 1
    assert groups[0].folded == {tuple(row): 2}
    assert groups[0].count == 2


def test_fold_keeps_insert_and_delete_groups_ordered():
    _, program = _program("Q1")
    plan = BatchPlan(program)
    row = ("k", 1, 1, 1, 5, 10.0, 0.0, 0.0, "N", "O",
           "1995-01-01", "1995-01-01", "1995-01-01", "MAIL", "NONE")
    events = [insert("Lineitem", *row), delete("Lineitem", *row), insert("Lineitem", *row)]
    groups = plan.fold(events)
    signs = [group.sign for group in groups]
    assert signs == [1, -1, 1] or signs == [1, -1]  # merge of outer inserts is
    # only legal when insert/delete triggers commute, which they do for Q1.
    assert sum(group.sign * group.count for group in groups) == 1


def test_delta_gmr_folds_signed_multiplicities():
    _, program = _program("Q1")
    plan = BatchPlan(program)
    row = ("k", 1, 1, 1, 5, 10.0, 0.0, 0.0, "N", "O",
           "1995-01-01", "1995-01-01", "1995-01-01", "MAIL", "NONE")
    groups = plan.fold([delete("Lineitem", *row), delete("Lineitem", *row)])
    gmr = groups[0].delta_gmr(program.schemas["Lineitem"])
    assert gmr.total_multiplicity() == -2


# ---------------------------------------------------------------------------
# BatchedEngine behaviour
# ---------------------------------------------------------------------------


def test_batched_engine_rejects_non_stream_relations():
    _, program = _program("Q1")
    engine = BatchedEngine(program, 10)
    with pytest.raises(ExecutionError):
        engine.apply(insert("Nation", 1, "FRANCE", 1))


def test_batched_engine_rejects_invalid_batch_size():
    _, program = _program("Q1")
    with pytest.raises(ExecutionError):
        BatchedEngine(program, 0)


def test_views_flush_pending_events_automatically():
    spec = workload("Q1")
    _, program = _program("Q1")
    engine = BatchedEngine(program, batch_size=10_000)  # never fills
    events = list(spec.stream_factory(events=50))
    for event in events:
        engine.apply(event)
    assert engine.events_processed == 50
    view = engine.view("Q1_sum_qty")  # triggers the flush
    assert view.support_size > 0
    assert engine.engine.events_processed == 50


def test_batched_matches_per_event_with_deletes():
    spec = workload("Q1")
    translated, program = _program("Q1")
    # max_live_orders=40 forces interleaved deletions early in the stream.
    events = list(spec.stream_factory(events=600, max_live_orders=40))
    assert any(event.sign < 0 for event in events)
    baseline = _replay(IncrementalEngine(program), spec, events)
    batched = _replay(BatchedEngine(program, 37), spec, events)
    for root in translated.roots():
        assert batched.result_dict(root) == pytest.approx(baseline.result_dict(root))


def test_statistics_include_batching_counters():
    spec = workload("Q1")
    _, program = _program("Q1")
    engine = _replay(BatchedEngine(program, 25), spec, list(spec.stream_factory(events=100)))
    stats = engine.statistics()
    assert stats["batching"]["batch_size"] == 25
    assert stats["batching"]["bulk_events"] + stats["batching"]["fallback_events"] == 100
    assert "maps" in stats and stats["events_processed"] == 100
