"""Tests for the executor backends (sequential and multiprocessing)."""

import pytest

from repro.compiler.hoivm import compile_query
from repro.errors import ExecutionError
from repro.exec import PartitionedEngine, make_backend
from repro.runtime.engine import IncrementalEngine
from repro.workloads import workload


def _program(query_name):
    spec = workload(query_name)
    translated = spec.query_factory()
    return translated, compile_query(
        translated.roots(),
        translated.schemas(),
        static_relations=translated.static_relations(),
    )


def _replay(engine, spec, events):
    for relation, rows in spec.static_tables().items():
        engine.load_static(relation, rows)
    for event in events:
        engine.apply(event)
    return engine


def test_unknown_backend_raises():
    _, program = _program("Q6")
    with pytest.raises(ExecutionError):
        make_backend("threads", program, 2)


def test_sequential_backend_serves_all_commands():
    spec = workload("Q6")
    _, program = _program("Q6")
    backend = make_backend("sequential", program, 2, batch_size=10)
    events = list(spec.stream_factory(events=60))
    backend.apply(0, events[:30])
    backend.apply(1, events[30:])
    backend.sync()
    sizes = backend.map_sizes(0)
    assert isinstance(sizes, dict)
    assert backend.memory_bytes(1) > 0
    stats = backend.statistics(0)
    assert stats["events_processed"] == 30
    backend.close()


def test_multiprocess_backend_matches_sequential_results():
    spec = workload("Q1")
    translated, program = _program("Q1")
    events = list(spec.stream_factory(events=300, max_live_orders=60))
    baseline = _replay(IncrementalEngine(program), spec, events)
    engine = PartitionedEngine(
        program, partitions=2, backend="process", batch_size=20
    )
    try:
        _replay(engine, spec, events)
        for root in translated.roots():
            assert engine.result_dict(root) == pytest.approx(baseline.result_dict(root))
        stats = engine.statistics()
        assert len(stats["partitions"]) == 2
    finally:
        engine.close()


def test_multiprocess_backend_close_is_idempotent():
    _, program = _program("Q6")
    engine = PartitionedEngine(program, partitions=2, backend="process")
    engine.close()
    engine.close()
