"""Tests for the columnar vector backend: bit-identity, fallbacks, staging.

The contract under test is the one DESIGN.md states for ``backend="vector"``:
default-mode results are bit-identical to the scalar backend — values *and*
types — with the vector path falling back per statement per batch whenever a
batch leaves the fast-numeric regime (int64 overflow, Fractions, mixed
columns), and disabling itself entirely (with a reason) when numpy is
missing.
"""

import os
import subprocess
import sys
from fractions import Fraction

import pytest

from repro.bench.scenarios import _prepare
from repro.codegen import vector
from repro.compiler.hoivm import compile_query
from repro.core.rows import Row
from repro.delta.events import delete, insert
from repro.errors import ExecutionError, ServiceError
from repro.exec import BatchedEngine
from repro.runtime.maps import IndexedTable
from repro.sql import Catalog, parse_sql_query
from repro.workloads import all_workloads, workload

needs_numpy = pytest.mark.skipif(
    not vector.numpy_available(),
    reason="numpy unavailable; the vector backend auto-disables",
)

#: Workloads whose lineitem-style triggers are known to vectorize (the
#: regression canary: losing one of these to the scalar path is a bug).
VECTORIZED_WORKLOADS = ("Q1", "Q6", "VWAP")

CATALOG = Catalog.from_dict({"R": ("k", "grp", "x", "s")})


def _workload_program(query_name):
    spec = workload(query_name)
    translated = spec.query_factory()
    program = compile_query(
        translated.roots(),
        translated.schemas(),
        static_relations=translated.static_relations(),
    )
    return spec, translated, program


def _custom_program(sql):
    translated = parse_sql_query(sql, CATALOG, name="T")
    return translated, compile_query(translated.roots(), translated.schemas())


def _run(program, static, events, backend, batch_size, compiled=True):
    # min_vector_rows=1 disables the small-group dispatch cutoff so tiny
    # test batches still exercise the vector kernels (the default cutoff
    # has its own test below).
    engine = BatchedEngine(
        program, batch_size=batch_size, compiled=compiled, backend=backend,
        min_vector_rows=1,
    )
    for relation, rows in static.items():
        engine.load_static(relation, rows)
    for event in events:
        engine.apply(event)
    engine.flush()
    results = {root: engine.result_dict(root) for root in program.roots}
    return engine, results


def _assert_bit_identical(reference, observed, context=""):
    assert set(reference) == set(observed), context
    for root, expected in reference.items():
        got = observed[root]
        assert got == expected, f"{context}: values diverged for {root}"
        for key, value in expected.items():
            assert type(got[key]) is type(value), (
                f"{context}: {root}{key!r} is {type(got[key]).__name__}, "
                f"scalar has {type(value).__name__}"
            )


# ---------------------------------------------------------------------------
# Cross-backend bit-identity property suite
# ---------------------------------------------------------------------------

_EVENTS = 240
_scenario_cache = {}


def _scenario(name):
    """(program, static, events, scalar reference results) per workload."""
    cached = _scenario_cache.get(name)
    if cached is None:
        spec, translated, program = _workload_program(name)
        agenda, static = _prepare(spec, _EVENTS, None, 7)
        events = list(agenda)
        _, reference = _run(program, static, events, "scalar", 7)
        cached = _scenario_cache[name] = (program, static, events, reference)
    return cached


@needs_numpy
@pytest.mark.parametrize("name", sorted(all_workloads()))
def test_vector_backend_bit_identical_across_batch_sizes(name):
    program, static, events, reference = _scenario(name)
    for batch_size in (1, 7, 100):
        engine, results = _run(program, static, events, "vector", batch_size)
        _assert_bit_identical(reference, results, f"{name} bs={batch_size}")


@needs_numpy
@pytest.mark.parametrize("name", VECTORIZED_WORKLOADS)
def test_known_vectorizable_workloads_take_the_vector_path(name):
    program, static, events, _ = _scenario(name)
    engine, _results = _run(program, static, events, "vector", 100)
    stats = engine.statistics()["batching"]
    assert stats["vector_statements"] > 0
    assert stats["vector_events"] > 0


@needs_numpy
def test_range_probe_workload_vectorizes():
    """VWAP's correlated range condition runs through the prefix-sum probe."""
    program, static, events, reference = _scenario("VWAP")
    engine, results = _run(program, static, events, "vector", 100)
    _assert_bit_identical(reference, results, "VWAP range probes")
    assert engine.statistics()["batching"]["vector_events"] > 0


@needs_numpy
def test_vector_backend_with_interpreted_statements():
    """compiled=False still dispatches vector kernels per bulk-safe group."""
    program, static, events, reference = _scenario("Q6")
    engine, results = _run(program, static, events, "vector", 100, compiled=False)
    _assert_bit_identical(reference, results, "Q6 interpreted")
    assert engine.statistics()["batching"]["vector_events"] > 0


# ---------------------------------------------------------------------------
# Staged ingestion
# ---------------------------------------------------------------------------


@needs_numpy
def test_staged_apply_matches_per_event_results():
    program, static, events, reference = _scenario("Q1")
    engine = BatchedEngine(program, batch_size=100, compiled=True,
                           backend="vector", min_vector_rows=1)
    for relation, rows in static.items():
        engine.load_static(relation, rows)
    applied = 0
    for start in range(0, len(events), 100):
        staged = engine.stage(events[start:start + 100])
        applied += engine.apply_staged(staged)
    engine.flush()
    assert applied == len(events)
    results = {root: engine.result_dict(root) for root in program.roots}
    _assert_bit_identical(reference, results, "Q1 staged")
    assert engine.statistics()["batching"]["vector_events"] > 0


@needs_numpy
def test_empty_and_singleton_batches():
    translated, program = _custom_program(
        "SELECT r.grp, SUM(r.x) AS total FROM R r GROUP BY r.grp"
    )
    engine = BatchedEngine(program, batch_size=1, compiled=True,
                           backend="vector", min_vector_rows=1)
    assert engine.apply_staged(engine.stage([])) == 0
    engine.apply(insert("R", 1, "a", 5, "s"))
    engine.flush()
    assert engine.apply_staged(engine.stage([insert("R", 2, "a", 7, "s")])) == 1
    engine.flush()
    assert engine.result_dict() == {("a",): 12}
    assert type(engine.result_dict()[("a",)]) is int


@needs_numpy
def test_small_groups_stay_scalar_under_default_cutoff():
    """Folded groups below min_vector_rows skip vector dispatch entirely.

    Tiny groups pay more in per-call numpy overhead than vectorization
    saves, so the default engine routes them through the scalar loop and
    records the decision as a "small-group" fallback.
    """
    from repro.exec.batching import DEFAULT_MIN_VECTOR_ROWS

    _, program = _custom_program(
        "SELECT r.grp, SUM(r.x) AS total FROM R r GROUP BY r.grp"
    )
    events = [insert("R", i, "a", float(i), "s") for i in range(12)]
    _, reference = _run(program, {}, events, "scalar", 4)
    engine = BatchedEngine(program, batch_size=4, compiled=True, backend="vector")
    assert engine.min_vector_rows == DEFAULT_MIN_VECTOR_ROWS
    for event in events:
        engine.apply(event)
    engine.flush()
    results = {root: engine.result_dict(root) for root in program.roots}
    _assert_bit_identical(reference, results, "small groups")
    stats = engine.statistics()["batching"]
    assert stats["vector_events"] == 0
    assert "small-group" in stats["vector_fallbacks"]
    # Raising the batch above the cutoff re-enables vector dispatch.
    big = BatchedEngine(program, batch_size=32, compiled=True, backend="vector")
    for event in events + [insert("R", 100 + i, "b", 1.0, "s") for i in range(20)]:
        big.apply(event)
    big.flush()
    assert big.statistics()["batching"]["vector_events"] > 0


# ---------------------------------------------------------------------------
# Regime fallbacks
# ---------------------------------------------------------------------------


@needs_numpy
def test_int64_overflow_mid_stream_falls_back_per_batch():
    sql = "SELECT r.grp, SUM(r.x) AS total FROM R r GROUP BY r.grp"
    _, program = _custom_program(sql)
    events = [insert("R", i, "a", 10) for i in range(4)]
    # Above 2**53 int64 holds the values but float64 cannot represent them
    # exactly; above 2**63 numpy cannot even build the int64 column.
    events += [insert("R", 10 + i, "a", 2**60 + i) for i in range(4)]
    events += [insert("R", 20 + i, "a", 2**70 + i) for i in range(4)]
    events = [
        insert(e.relation, *e.values, "s") for e in events
    ]
    _, program = _custom_program(sql)
    _, reference = _run(program, {}, events, "scalar", 4)
    engine, results = _run(program, {}, events, "vector", 4)
    _assert_bit_identical(reference, results, "int overflow")
    total = results["T_total"][("a",)]
    assert type(total) is int and total == 40 + 4 * 2**60 + 4 * 2**70 + 12
    fallbacks = engine.statistics()["batching"]["vector_fallbacks"]
    assert "int-magnitude" in fallbacks
    assert "int-overflow" in fallbacks
    # The in-regime prefix still vectorized before the stream went hot.
    assert engine.statistics()["batching"]["vector_events"] >= 4


@needs_numpy
def test_fraction_batches_never_vectorize():
    _, program = _custom_program(
        "SELECT r.grp, SUM(r.x) AS total FROM R r GROUP BY r.grp"
    )
    events = [
        insert("R", i, "a", Fraction(1, 3) if i % 2 else Fraction(i, 7), "s")
        for i in range(12)
    ]
    _, reference = _run(program, {}, events, "scalar", 4)
    engine, results = _run(program, {}, events, "vector", 4)
    _assert_bit_identical(reference, results, "fractions")
    stats = engine.statistics()["batching"]
    assert stats["vector_events"] == 0
    assert "mixed-column" in stats["vector_fallbacks"]
    assert type(results["T_total"][("a",)]) is Fraction


@needs_numpy
def test_string_guards_vectorize_with_identical_results():
    _, program = _custom_program(
        "SELECT SUM(r.x) AS total FROM R r WHERE r.s = 'keep'"
    )
    events = [
        insert("R", i, "g", float(i), "keep" if i % 3 else "drop")
        for i in range(30)
    ]
    _, reference = _run(program, {}, events, "scalar", 10)
    engine, results = _run(program, {}, events, "vector", 10)
    _assert_bit_identical(reference, results, "string guards")
    assert engine.statistics()["batching"]["vector_events"] == 30


@needs_numpy
def test_deletes_fold_and_stay_bit_identical():
    _, program = _custom_program(
        "SELECT r.grp, SUM(r.x) AS total FROM R r GROUP BY r.grp"
    )
    events = []
    for i in range(20):
        events.append(insert("R", i, "a" if i % 2 else "b", i + 1, "s"))
    for i in range(0, 20, 3):
        events.append(delete("R", i, "a" if i % 2 else "b", i + 1, "s"))
    _, reference = _run(program, {}, events, "scalar", 8)
    engine, results = _run(program, {}, events, "vector", 8)
    _assert_bit_identical(reference, results, "deletes")


# ---------------------------------------------------------------------------
# Checkpoint / restore mid-stream
# ---------------------------------------------------------------------------


@needs_numpy
def test_checkpoint_restore_mid_stream_keeps_identity():
    program, static, events, reference = _scenario("Q1")
    half = len(events) // 2
    first = BatchedEngine(program, batch_size=50, compiled=True,
                          backend="vector", min_vector_rows=1)
    for relation, rows in static.items():
        first.load_static(relation, rows)
    for event in events[:half]:
        first.apply(event)
    first.flush()
    state = first.checkpoint_state()

    resumed = BatchedEngine(program, batch_size=50, compiled=True,
                            backend="vector", min_vector_rows=1)
    resumed.restore_state(state)
    for event in events[half:]:
        resumed.apply(event)
    resumed.flush()
    results = {root: resumed.result_dict(root) for root in program.roots}
    _assert_bit_identical(reference, results, "Q1 checkpoint/restore")
    assert resumed.statistics()["batching"]["vector_events"] > 0


# ---------------------------------------------------------------------------
# numpy-optional behaviour
# ---------------------------------------------------------------------------


def test_unknown_backend_rejected():
    _, program = _custom_program("SELECT SUM(r.x) AS total FROM R r")
    with pytest.raises(ExecutionError):
        BatchedEngine(program, batch_size=4, backend="simd")


def test_missing_numpy_downgrades_with_reason(monkeypatch):
    monkeypatch.setattr(vector, "np", None)
    monkeypatch.setattr(vector, "_NUMPY_REASON", "numpy unavailable (test)")
    _, program = _custom_program(
        "SELECT r.grp, SUM(r.x) AS total FROM R r GROUP BY r.grp"
    )
    engine = BatchedEngine(program, batch_size=4, compiled=True, backend="vector")
    assert engine.backend == "vector"
    assert engine.backend_active == "scalar"
    for i in range(8):
        engine.apply(insert("R", i, "a", i, "s"))
    engine.flush()
    assert engine.result_dict() == {("a",): 28}
    stats = engine.statistics()["batching"]
    assert stats["vector_reason"] == "numpy unavailable (test)"
    assert stats["vector_events"] == 0


def test_missing_numpy_surfaces_in_describe(monkeypatch):
    monkeypatch.setattr(vector, "np", None)
    monkeypatch.setattr(vector, "_NUMPY_REASON", "numpy unavailable (test)")
    from repro.codegen.describe import describe_program

    _, program = _custom_program("SELECT SUM(r.x) AS total FROM R r")
    doc = describe_program(program)
    assert doc["summary"]["vectorized_statements"] == 0
    statement = doc["triggers"][0]["statements"][0]
    assert statement["vectorized"] is False
    assert statement["vector_reason"] == "numpy unavailable (test)"


def test_repro_no_numpy_env_disables_backend():
    """The CI no-numpy leg's switch: REPRO_NO_NUMPY blocks the import."""
    code = (
        "from repro.codegen import vector; "
        "assert not vector.numpy_available(); "
        "assert 'REPRO_NO_NUMPY' in (vector.vector_unavailable_reason() or ''), "
        "vector.vector_unavailable_reason()"
    )
    env = dict(os.environ, REPRO_NO_NUMPY="1")
    src = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    subprocess.run([sys.executable, "-c", code], check=True, env=env)


# ---------------------------------------------------------------------------
# Introspection and service plumbing
# ---------------------------------------------------------------------------


@needs_numpy
def test_describe_reports_vector_status():
    from repro.codegen.describe import describe_program

    _, _, program = _workload_program("Q6")
    doc = describe_program(program)
    assert doc["summary"]["vectorized_statements"] == 2
    _, _, q3 = _workload_program("Q3")
    doc = describe_program(q3)
    reasons = {
        s["vector_reason"]
        for t in doc["triggers"]
        for s in t["statements"]
        if not s["vectorized"]
    }
    assert reasons, "Q3 has statements the vector emitter cannot lower"


@needs_numpy
def test_codegen_dump_vector_backend_cli(capsys):
    from repro.codegen.__main__ import main

    assert main(["dump", "Q6", "--backend", "vector"]) == 0
    out = capsys.readouterr().out
    assert "statements vectorized" in out
    assert "_vkernel" in out


@needs_numpy
def test_service_mode_routes_vector_backend():
    from repro.service.core import engine_for_mode

    _, program = _custom_program("SELECT SUM(r.x) AS total FROM R r")
    engine = engine_for_mode(program, mode="batched", batch_size=8, backend="vector")
    assert isinstance(engine, BatchedEngine)
    assert engine.backend == "vector"
    with pytest.raises(ServiceError):
        engine_for_mode(program, mode="partitioned", backend="vector")


# ---------------------------------------------------------------------------
# set_total: the vector sink's write primitive
# ---------------------------------------------------------------------------


def test_set_total_preserves_index_bucket_order():
    table = IndexedTable(("a", "b"))
    index_cols = frozenset({"a"})
    table.index_for(index_cols)
    first = Row((("a", 1), ("b", 1)))
    second = Row((("a", 1), ("b", 2)))
    table.add(first, 10)
    table.add(second, 20)

    def bucket_order():
        bucket = table.index_for(index_cols)[Row((("a", 1),))]
        return list(bucket)

    before = bucket_order()
    table.set_total(first, 11)
    assert bucket_order() == before, "set_total must update in place"
    assert dict(table.items())[first] == 11
    # set() by contrast pops and re-appends, reordering the bucket — the
    # divergence that made the vector sink grow its own write primitive.
    table.set(first, 12)
    assert bucket_order() == [second, first]


def test_set_total_deletes_on_zero_and_skips_noops():
    table = IndexedTable(("a",))
    row = Row((("a", 1),))
    table.add(row, 5)
    epoch = table.write_epoch
    table.set_total(row, 5)
    assert table.write_epoch == epoch, "same value+type must not bump the epoch"
    table.set_total(row, 0.0)
    assert row not in dict(table.items())
