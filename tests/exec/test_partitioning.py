"""Tests for partition-spec inference, routing and merged reads."""

import pytest

from repro.compiler.hoivm import compile_query
from repro.delta.events import insert
from repro.errors import ExecutionError
from repro.exec import PartitionedEngine, infer_partition_spec, stable_hash
from repro.exec.partitioning import MERGE_REPLICATED, MERGE_SUM
from repro.runtime.engine import IncrementalEngine
from repro.workloads import workload


def _program(query_name):
    spec = workload(query_name)
    translated = spec.query_factory()
    return translated, compile_query(
        translated.roots(),
        translated.schemas(),
        static_relations=translated.static_relations(),
    )


def _replay(engine, spec, events):
    for relation, rows in spec.static_tables().items():
        engine.load_static(relation, rows)
    for event in events:
        engine.apply(event)
    return engine


# ---------------------------------------------------------------------------
# Spec inference
# ---------------------------------------------------------------------------


def test_q3_co_partitions_orders_and_lineitem_on_orderkey():
    _, program = _program("Q3")
    spec = infer_partition_spec(program, 4)
    assert spec.keys["Orders"] == ("orderkey",)
    assert spec.keys["Lineitem"] == ("orderkey",)
    # Customer joins Orders on custkey, incompatible with orderkey
    # partitioning: it must be replicated (the broadcast path).
    assert "Customer" in spec.replicated
    assert spec.merge[program.roots["Q3_revenue"]] == MERGE_SUM


def test_order_book_self_join_partitions_on_broker_id():
    _, program = _program("BSP")
    spec = infer_partition_spec(program, 4)
    assert spec.keys["Bids"] == ("broker_id",)


def test_nested_aggregate_query_degenerates_to_replication():
    _, program = _program("VWAP")
    spec = infer_partition_spec(program, 4)
    # VWAP is nonlinear in Bids (nested aggregates): Bids must be replicated
    # and the root read from a single partition.
    assert "Bids" in spec.replicated
    root = program.roots["VWAP_vwap"]
    assert spec.merge[root] == MERGE_REPLICATED


def test_mddb_self_join_partitions_on_shared_trajectory_key():
    _, program = _program("MDDB1")
    spec = infer_partition_spec(program, 4)
    assert "AtomPositions" in spec.keys
    # Both self-join atoms must agree on the key, whichever unified column
    # (trajectory or timestep) inference picked.
    assert spec.keys["AtomPositions"][0] in ("trj_id", "t")


def test_explicit_keys_are_validated():
    _, program = _program("Q1")
    with pytest.raises(ExecutionError):
        infer_partition_spec(program, 2, keys={"Lineitem": ("no_such_column",)})
    with pytest.raises(ExecutionError):
        infer_partition_spec(program, 2, keys={"NoSuchRelation": ("x",)})
    with pytest.raises(ExecutionError):
        infer_partition_spec(program, 0)


def test_stable_hash_is_deterministic_across_value_kinds():
    assert stable_hash((42,)) == stable_hash((42,))
    assert stable_hash(("abc", 1.5)) == stable_hash(("abc", 1.5))
    assert stable_hash((1,)) != stable_hash((2,))


def test_stable_hash_routes_numerically_equal_keys_together():
    # 7 == 7.0 under Python equality, so a join between an int-keyed tuple and
    # a float-keyed tuple must land both on the same partition.
    assert stable_hash((7,)) == stable_hash((7.0,))
    assert stable_hash((True,)) == stable_hash((1,))


# ---------------------------------------------------------------------------
# Routing and merged reads
# ---------------------------------------------------------------------------


def test_routing_is_deterministic_per_key():
    spec = workload("Q3")
    _, program = _program("Q3")
    engine = PartitionedEngine(program, partitions=4)
    event = insert("Lineitem", 7, 1, 1, 1, 5, 10.0, 0.0, 0.0, "N", "O",
                   "1995-01-01", "1995-01-01", "1995-01-01", "MAIL", "NONE")
    index = engine.route(event)
    assert index is not None
    assert all(engine.route(event) == index for _ in range(5))
    # Orders with the same orderkey must land on the same partition.
    order = insert("Orders", 7, 1, "O", 100.0, "1995-01-01", "1-URGENT", "c", 0, "x")
    assert engine.route(order) == index


def test_replicated_relations_broadcast_to_every_partition():
    spec = workload("Q3")
    _, program = _program("Q3")
    engine = PartitionedEngine(program, partitions=3)
    customer = insert("Customer", 1, "n", 1, 0.0, "BUILDING", "p")
    assert engine.route(customer) is None
    engine.apply(customer)
    assert engine.events_broadcast == 1


def test_partitioned_views_match_per_event_execution():
    spec = workload("Q3")
    translated, program = _program("Q3")
    events = list(spec.stream_factory(events=500, max_live_orders=40))
    assert any(event.sign < 0 for event in events)
    baseline = _replay(IncrementalEngine(program), spec, events)
    partitioned = _replay(PartitionedEngine(program, partitions=3), spec, events)
    for root in translated.roots():
        assert partitioned.result_dict(root) == pytest.approx(baseline.result_dict(root))
    assert sum(partitioned.events_routed) + partitioned.events_broadcast == len(events)


def test_partition_statistics_expose_per_partition_detail():
    spec = workload("Q1")
    _, program = _program("Q1")
    engine = _replay(
        PartitionedEngine(program, partitions=2), spec, list(spec.stream_factory(events=120))
    )
    stats = engine.statistics()
    assert stats["spec"]["partitions"] == 2
    assert len(stats["partitions"]) == 2
    assert all("maps" in partition for partition in stats["partitions"])
    assert sum(stats["events_routed"]) + stats["events_broadcast"] >= 120


def test_single_partition_is_identical_to_plain_engine():
    spec = workload("Q6")
    translated, program = _program("Q6")
    events = list(spec.stream_factory(events=200))
    baseline = _replay(IncrementalEngine(program), spec, events)
    single = _replay(PartitionedEngine(program, partitions=1), spec, events)
    for root in translated.roots():
        assert single.result_dict(root) == baseline.result_dict(root)
