"""Tests for the external scalar function registry."""

import math

import pytest

from repro.agca.functions import lookup_function, register_function, registered_functions
from repro.errors import EvaluationError


def test_like_matches_sql_patterns():
    like = lookup_function("like")
    assert like("PROMO BURNISHED COPPER", "PROMO%") == 1
    assert like("ECONOMY ANODIZED STEEL", "%BRASS") == 0
    assert like("abc", "a_c") == 1
    assert like(None, "%") == 1


def test_substring_is_one_based_and_clamped():
    substring = lookup_function("substring")
    assert substring("13-555-1234", 1, 2) == "13"
    assert substring("13-555-1234", 0, 2) == "13"
    assert substring("abc", 2, 10) == "bc"


def test_extract_year():
    extract_year = lookup_function("extract_year")
    assert extract_year("1995-03-15") == 1995
    assert extract_year(19950315) == 1995


def test_listmax_and_listmin():
    assert lookup_function("listmax")(1, 5, 3) == 5
    assert lookup_function("listmin")(1, 5, 3) == 1


def test_vec_length():
    assert lookup_function("vec_length")(3, 4, 0) == pytest.approx(5.0)


def test_dihedral_angle_known_configuration():
    dihedral = lookup_function("dihedral_angle")
    # Four points forming a 90-degree dihedral angle (sign depends on orientation).
    angle = dihedral(0, 1, 0, 0, 0, 0, 1, 0, 0, 1, 0, 1)
    assert abs(angle) == pytest.approx(math.pi / 2, abs=1e-6)
    # A planar configuration has a straight (pi) dihedral angle.
    flat = dihedral(0, 1, 0, 0, 0, 0, 1, 0, 0, 1, -1, 0)
    assert abs(flat) == pytest.approx(math.pi, abs=1e-6)


def test_if_then_else_and_in_list():
    assert lookup_function("if_then_else")(1, "yes", "no") == "yes"
    assert lookup_function("if_then_else")(0, "yes", "no") == "no"
    assert lookup_function("in_list")("MAIL", "MAIL", "SHIP") == 1
    assert lookup_function("in_list")("TRUCK", "MAIL", "SHIP") == 0


def test_boolean_helpers():
    assert lookup_function("not")(0) == 1
    assert lookup_function("and")(1, 1, 0) == 0
    assert lookup_function("or")(0, 0, 1) == 1
    assert lookup_function("lt")(1, 2) == 1
    assert lookup_function("ge")(1, 2) == 0
    assert lookup_function("eq")("a", "a") == 1


def test_unknown_function_raises():
    with pytest.raises(EvaluationError):
        lookup_function("no_such_function")


def test_register_function_and_conflict():
    register_function("test_only_fn", lambda x: x + 1)
    assert lookup_function("test_only_fn")(1) == 2
    assert "test_only_fn" in registered_functions()
    with pytest.raises(ValueError):
        register_function("test_only_fn", lambda x: x)
    register_function("test_only_fn", lambda x: x - 1, overwrite=True)
    assert lookup_function("test_only_fn")(1) == 0
