"""Tests for the AGCA pretty printer."""

from repro.agca.builders import agg, cmp, exists, lift, mapref, prod, rel, val, vconst, vmul
from repro.agca.printer import to_string, value_to_string
from repro.agca.ast import VArith, VConst, VVar, VFunc


def test_print_relation_and_mapref():
    assert to_string(rel("R", "a", "b")) == "R(a, b)"
    assert to_string(mapref("Q_LI", "ck", "ok")) == "Q_LI[ck, ok]"


def test_print_product_condition_and_value():
    expr = prod(rel("R", "a", "b"), cmp("a", "<", "b"), val(vmul("a", 2)))
    assert to_string(expr) == "(R(a, b) * {a < b} * (a * 2))"


def test_print_aggsum_and_lift():
    expr = agg(("b",), prod(rel("R", "a", "b"), lift("x", val("a"))))
    assert to_string(expr) == "Sum[b]((R(a, b) * (x := a)))"


def test_print_exists_and_functions():
    assert to_string(exists(rel("R", "a"))) == "Exists(R(a))"
    assert value_to_string(VFunc("like", (VVar("s"), VConst("PROMO%")))) == "like(s, 'PROMO%')"


def test_printer_is_deterministic_for_equal_expressions():
    a = prod(rel("R", "x"), cmp("x", ">", 0))
    b = prod(rel("R", "x"), cmp("x", ">", 0))
    assert to_string(a) == to_string(b)
