"""Tests for the AGCA evaluation semantics, including the paper's Examples 3-5."""

import pytest

from repro.agca.builders import (
    agg,
    cmp,
    const,
    exists,
    lift,
    mapref,
    plus,
    prod,
    rel,
    val,
    var,
    vadd,
    vconst,
    vdiv,
    vfunc,
    vmul,
)
from repro.agca.evaluator import DictSource, Evaluator, eval_value, evaluate
from repro.agca.ast import VArith, VConst, VVar
from repro.core.gmr import GMR
from repro.core.rows import Row
from repro.errors import EvaluationError, UnboundVariableError


@pytest.fixture()
def example3_source():
    # R = {(1,2) -> q1, (3,5) -> q2, (4,2) -> q3} with q1=q2=q3=1 for simplicity,
    # stored under columns (A, B).
    contents = GMR.from_rows([{"A": 1, "B": 2}, {"A": 3, "B": 5}, {"A": 4, "B": 2}])
    return DictSource(relations={"R": contents}, schemas={"R": ("A", "B")})


def test_constant_evaluates_to_scalar():
    assert evaluate(const(7), {}).scalar_value() == 7
    assert evaluate(const(0), {}) == GMR.empty()


def test_variable_value_from_context():
    assert evaluate(var("x"), {}, context={"x": 4}).scalar_value() == 4


def test_unbound_variable_raises():
    with pytest.raises(UnboundVariableError):
        evaluate(var("x"), {})


def test_relation_renames_columns_positionally(example3_source):
    result = Evaluator(example3_source).evaluate(rel("R", "x", "y"))
    assert result[{"x": 1, "y": 2}] == 1
    assert result.support_size == 3


def test_relation_filters_on_bound_variables(example3_source):
    # Example 3: [[R(x, y)]](D, <x:3>) keeps only the tuple with x = 3.
    result = Evaluator(example3_source).evaluate(rel("R", "x", "y"), {"x": 3})
    assert result.support_size == 1
    assert result[{"x": 3, "y": 5}] == 1


def test_selection_as_condition_product(example3_source):
    # Example 3: R(x, y) * (x < y).
    expr = prod(rel("R", "x", "y"), cmp("x", "<", "y"))
    result = Evaluator(example3_source).evaluate(expr)
    assert result.support_size == 2
    assert {"x": 4, "y": 2} not in result


def test_example4_group_by_sum(example3_source):
    # Sum[y](R(x, y) * 2 * x): group by y, value 2*x summed.
    expr = agg(("y",), prod(rel("R", "x", "y"), const(2), val("x")))
    result = Evaluator(example3_source).evaluate(expr)
    assert result[{"y": 2}] == 2 * 1 + 2 * 4
    assert result[{"y": 5}] == 2 * 3


def test_repeated_column_acts_as_equality():
    source = DictSource(
        relations={"R": GMR.from_rows([{"A": 1, "B": 1}, {"A": 1, "B": 2}])},
        schemas={"R": ("A", "B")},
    )
    result = Evaluator(source).evaluate(rel("R", "x", "x"))
    assert result.support_size == 1
    assert result[{"x": 1}] == 1


def test_natural_join_with_sideways_binding():
    source = DictSource(
        relations={
            "R": GMR.from_rows([{"A": 1, "B": 10}, {"A": 2, "B": 20}]),
            "S": GMR.from_rows([{"B": 10, "C": 5}]),
        },
        schemas={"R": ("A", "B"), "S": ("B", "C")},
    )
    expr = prod(rel("R", "a", "b"), rel("S", "b", "c"))
    result = Evaluator(source).evaluate(expr)
    assert result.support_size == 1
    assert result[{"a": 1, "b": 10, "c": 5}] == 1


def test_bag_union_adds_multiplicities(example3_source):
    expr = plus(rel("R", "x", "y"), rel("R", "x", "y"))
    result = Evaluator(example3_source).evaluate(expr)
    assert result[{"x": 1, "y": 2}] == 2


def test_negative_multiplicities_model_deletions(example3_source):
    expr = plus(rel("R", "x", "y"), prod(const(-1), rel("R", "x", "y")))
    assert Evaluator(example3_source).evaluate(expr) == GMR.empty()


def test_lift_binds_scalar_aggregate(example3_source):
    expr = lift("total", agg((), prod(rel("R", "x", "y"), val("x"))))
    result = Evaluator(example3_source).evaluate(expr)
    assert result[{"total": 8}] == 1


def test_lift_over_bound_variable_checks_equality(example3_source):
    expr = lift("t", agg((), rel("R", "x", "y")))
    assert Evaluator(example3_source).evaluate(expr, {"t": 3}).scalar_value() == 1
    assert Evaluator(example3_source).evaluate(expr, {"t": 99}) == GMR.empty()


def test_lift_non_scalar_body_raises(example3_source):
    with pytest.raises(EvaluationError):
        Evaluator(example3_source).evaluate(lift("x", rel("R", "a", "b")))


def test_example5_correlated_nested_aggregate():
    # SELECT * FROM R WHERE B < (SELECT SUM(D) FROM S WHERE A > C)
    source = DictSource(
        relations={
            "R": GMR.from_rows([{"A": 5, "B": 3}, {"A": 1, "B": 10}]),
            "S": GMR.from_rows([{"C": 2, "D": 4}, {"C": 0, "D": 1}]),
        },
        schemas={"R": ("A", "B"), "S": ("C", "D")},
    )
    nested = agg((), prod(rel("S", "c", "d"), cmp("a", ">", "c"), val("d")))
    expr = agg(("a", "b"), prod(rel("R", "a", "b"), lift("z", nested), cmp("b", "<", "z")))
    result = Evaluator(source).evaluate(expr)
    # For (5, 3): nested sum = 4 + 1 = 5 > 3 -> kept.  For (1, 10): sum = 1 < 10 -> dropped.
    assert result[{"a": 5, "b": 3}] == 1
    assert result.support_size == 1


def test_exists_collapses_multiplicity(example3_source):
    assert Evaluator(example3_source).evaluate(exists(rel("R", "x", "y"))).scalar_value() == 1
    assert Evaluator(example3_source).evaluate(exists(prod(rel("R", "x", "y"), cmp("x", ">", 100)))) == GMR.empty()


def test_empty_sum_aggregate_is_zero_scalar(example3_source):
    expr = agg((), prod(rel("R", "x", "y"), cmp("x", ">", 100)))
    assert Evaluator(example3_source).evaluate(expr) == GMR.empty()


def test_aggsum_group_from_context(example3_source):
    expr = agg(("g",), prod(rel("R", "x", "y"), val("x")))
    result = Evaluator(example3_source).evaluate(expr, {"g": "tag"})
    assert result[{"g": "tag"}] == 8


def test_mapref_reads_from_map_source():
    maps = {"M": GMR.from_rows([{"k": 1}]).scale(42)}
    source = DictSource(maps=maps, schemas={"M": ("k",)})
    assert Evaluator(source).evaluate(mapref("M", "k"), {"k": 1}).total_multiplicity() == 42
    assert Evaluator(source).evaluate(agg((), mapref("M", "k")), {"k": 9}) == GMR.empty()


def test_atom_arity_mismatch_raises(example3_source):
    with pytest.raises(EvaluationError):
        Evaluator(example3_source).evaluate(rel("R", "only_one"))


def test_eval_value_arithmetic_and_functions():
    ctx = {"a": 6, "b": 3, "s": "PROMO STEEL"}
    assert eval_value(vadd("a", "b"), ctx) == 9
    assert eval_value(vmul("a", "b"), ctx) == 18
    assert eval_value(vdiv("a", "b"), ctx) == 2
    assert eval_value(vdiv("a", vconst(0)), ctx) == 0
    assert eval_value(vfunc("like", "s", vconst("PROMO%")), ctx) == 1
    assert eval_value(VArith("-", VVar("a"), VConst(1)), ctx) == 5


def test_evaluate_scalar_convenience(example3_source):
    evaluator = Evaluator(example3_source)
    assert evaluator.evaluate_scalar(agg((), rel("R", "x", "y"))) == 3


def test_dictsource_schema_inference_single_column():
    source = DictSource(relations={"R": GMR.from_rows([{"a": 1}, {"a": 2}])})
    assert evaluate(rel("R", "z"), source).support_size == 2


def test_free_variable_cache_survives_expression_garbage_collection(example3_source):
    """Regression: the free-variable cache is keyed by id(expr) and must keep
    each cached expression alive.  Before the fix, evaluating a stream of
    short-lived (structurally identical) trees could reuse a dead tree's
    memory address and inherit its stale variable set, corrupting the memo
    keys and producing wrong, allocation-order-dependent results."""
    import weakref

    evaluator = Evaluator(example3_source)

    def build():
        # Sum[A](R(A, B) * B): depends on both columns of R.
        return agg(("A",), prod(rel("R", "A", "B"), var("B")))

    expected = evaluator.evaluate(build())
    first = build()
    evaluator.evaluate(first)
    ref = weakref.ref(first)
    del first
    # The evaluator must be pinning the tree: even though the caller dropped
    # it, its id may still be a cache key, so it must not be collectable.
    assert ref() is not None

    # Hammer the evaluator with fresh identical temporaries; every result
    # must match no matter how allocation addresses are recycled.
    for _ in range(100):
        assert evaluator.evaluate(build()) == expected


def test_shared_memo_across_contexts_is_safe(example3_source):
    """An externally supplied memo may be reused across different bindings;
    keys include the relevant context projection, so results must not leak
    between contexts."""
    evaluator = Evaluator(example3_source)
    expr = agg((), prod(rel("R", "A", "B"), var("B")))
    memo = {}
    total = evaluator.evaluate(expr, {}, memo=memo).scalar_value()
    bound = evaluator.evaluate(expr, {"A": 1}, memo=memo).scalar_value()
    again = evaluator.evaluate(expr, {}, memo=memo).scalar_value()
    assert total == 2 + 5 + 2
    assert bound == 2
    assert again == total
