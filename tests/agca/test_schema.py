"""Tests for binding-pattern analysis (input/output variables) and degree."""

import pytest

from repro.agca.builders import agg, cmp, const, exists, lift, mapref, prod, rel, val, var
from repro.agca.schema import degree, has_nested_relation, input_variables, output_variables, schema_of
from repro.errors import SchemaError


def test_relation_outputs_all_columns():
    assert output_variables(rel("R", "a", "b")) == {"a", "b"}
    assert input_variables(rel("R", "a", "b")) == frozenset()


def test_value_and_cmp_have_input_variables():
    assert input_variables(val("x")) == {"x"}
    assert input_variables(cmp("x", "<", "y")) == {"x", "y"}
    assert output_variables(cmp("x", "<", "y")) == frozenset()


def test_bound_variables_are_not_inputs():
    assert input_variables(val("x"), bound=["x"]) == frozenset()


def test_product_sideways_binding():
    expr = prod(rel("R", "a", "b"), cmp("a", "<", "b"), val("b"))
    inputs, outputs = schema_of(expr)
    assert inputs == frozenset()
    assert outputs == {"a", "b"}


def test_product_unbound_condition_is_input():
    expr = prod(rel("R", "a"), cmp("a", "<", "limit"))
    assert input_variables(expr) == {"limit"}


def test_lift_outputs_its_variable():
    expr = lift("x", agg((), prod(rel("S", "c"), val("c"))))
    assert output_variables(expr) == {"x"}


def test_lift_over_bound_variable_is_condition():
    expr = lift("x", const(1))
    assert output_variables(expr, bound=["x"]) == frozenset()


def test_lift_body_must_be_scalar():
    with pytest.raises(SchemaError):
        schema_of(lift("x", rel("R", "a")))


def test_correlated_subquery_has_input_variable():
    # Example 5: the nested aggregate is correlated on A from the outside.
    nested = agg((), prod(rel("S", "c", "d"), cmp("a", ">", "c"), val("d")))
    assert input_variables(nested) == {"a"}
    outer = prod(rel("R", "a", "b"), lift("z", nested), cmp("b", "<", "z"))
    assert input_variables(outer) == frozenset()
    assert output_variables(outer) >= {"a", "b", "z"}


def test_aggsum_projects_outputs_to_group():
    expr = agg(("a",), prod(rel("R", "a", "b"), val("b")))
    assert output_variables(expr) == {"a"}


def test_aggsum_group_var_must_be_available():
    with pytest.raises(SchemaError):
        schema_of(agg(("missing",), rel("R", "a")))


def test_aggsum_group_var_may_come_from_bound_context():
    expr = agg(("t",), rel("R", "a"))
    assert output_variables(expr, bound=["t"]) == {"t"}


def test_sum_unions_branch_schemas():
    expr = prod(rel("R", "a"), cmp("a", ">", 0))
    other = prod(rel("S", "a"), cmp("a", "<", 0))
    assert output_variables(prod(rel("T", "z"))) == {"z"}
    from repro.agca.builders import plus

    assert output_variables(plus(expr, other)) == {"a"}


def test_exists_has_no_outputs():
    expr = exists(agg((), rel("R", "a")))
    assert output_variables(expr) == frozenset()


def test_mapref_outputs_keys_and_degree_zero():
    assert output_variables(mapref("M", "k1", "k2")) == {"k1", "k2"}
    assert degree(mapref("M", "k1")) == 0


def test_degree_counts_relation_atoms():
    assert degree(const(3)) == 0
    assert degree(rel("R", "a")) == 1
    assert degree(prod(rel("R", "a"), rel("S", "a"))) == 2
    assert degree(agg((), prod(rel("R", "a"), rel("S", "a"), rel("T", "a")))) == 3


def test_degree_of_sum_is_maximum():
    from repro.agca.builders import plus

    expr = plus(prod(rel("R", "a"), rel("S", "a")), rel("T", "b"))
    assert degree(expr) == 2


def test_nested_relation_detection():
    nested = lift("x", agg((), rel("S", "c")))
    assert has_nested_relation(prod(rel("R", "a"), nested))
    assert not has_nested_relation(prod(rel("R", "a"), lift("x", const(1))))
