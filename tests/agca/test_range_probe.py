"""Evaluator range-probe routing: guarded AggSum/Exists shapes, bit-identical.

The evaluator may only route ``AggSum([], M[k] * {k op c})`` (and the
``Exists`` variant) to an ordered probe when the answer provably matches the
scan.  Each test evaluates the same expression through a probe-capable
``RuntimeSource`` and through a plain wrapper with the probe surface hidden,
and requires equal values *and* types.
"""

import random
from fractions import Fraction

import pytest

from repro.agca.ast import AggSum, Cmp, Exists, MapRef, Product, VArith, VConst, VVar
from repro.agca.evaluator import Evaluator, match_range_pattern
from repro.runtime.database import Database
from repro.runtime.interpreter import RuntimeSource
from repro.runtime.maps import MapStore


class _NoProbe:
    """RuntimeSource with the range_sum surface hidden (generic evaluation)."""

    def __init__(self, source):
        self._inner = source

    def relation_columns(self, name):
        return self._inner.relation_columns(name)

    def map_columns(self, name):
        return self._inner.map_columns(name)

    def scan_relation(self, name, bound):
        return self._inner.scan_relation(name, bound)

    def scan_map(self, name, bound):
        return self._inner.scan_map(name, bound)


def _sources(entries, columns=("price",)):
    maps = MapStore()
    table = maps.declare("M", columns)
    for key, value in entries:
        table.add(key, value)
    source = RuntimeSource(Database(), maps)
    return source, _NoProbe(source), table


GUARDED = AggSum((), Product((MapRef("M", ("p",)), Cmp(VVar("p"), ">", VVar("c")))))
REVERSED = AggSum((), Product((MapRef("M", ("p",)), Cmp(VVar("c"), ">=", VVar("p")))))
EXISTS = Exists(Product((MapRef("M", ("p",)), Cmp(VVar("p"), "<", VVar("c")))))


def _assert_same(expr, probed_source, plain_source, ctx):
    probed = Evaluator(probed_source).evaluate(expr, ctx)
    plain = Evaluator(plain_source).evaluate(expr, ctx)
    assert probed == plain
    for row, mult in plain.items():
        other = probed[row]
        assert other == mult and type(other) is type(mult)


@pytest.mark.parametrize("expr", [GUARDED, REVERSED, EXISTS])
def test_probed_evaluation_matches_generic(expr):
    rng = random.Random(7)
    entries = [((rng.randint(0, 25),), rng.choice((-3, 1, 2, 9))) for _ in range(300)]
    probed, plain, _ = _sources(entries)
    for cutoff in range(-1, 27):
        _assert_same(expr, probed, plain, {"c": cutoff})


def test_probe_actually_engages():
    probed, _, table = _sources([((i,), i + 1) for i in range(50)])
    evaluator = Evaluator(probed)
    for cutoff in range(50):
        evaluator.evaluate(GUARDED, {"c": cutoff})
    assert table.range_index("price").stats()["probes"] > 0


def test_bound_key_variable_declines_the_probe():
    # With the atom key bound in the context the scan is filtered, not a
    # range; the evaluator must fall back to generic evaluation.
    probed, plain, table = _sources([((i,), 2) for i in range(10)])
    ctx = {"c": 3, "p": 7}
    _assert_same(GUARDED, probed, plain, ctx)
    assert table.range_index("price").stats()["probes"] == 0


def test_fraction_values_probe_exactly():
    entries = [((i,), Fraction(1, i + 1)) for i in range(12)]
    probed, plain, _ = _sources(entries)
    for cutoff in range(-1, 13):
        _assert_same(GUARDED, probed, plain, {"c": cutoff})


def test_float_values_still_match_through_the_scan_fallback():
    rng = random.Random(11)
    entries = [((rng.randint(0, 9),), rng.choice((0.25, 1.5, 3, -0.75))) for _ in range(60)]
    probed, plain, _ = _sources(entries)
    for cutoff in range(-1, 11):
        _assert_same(GUARDED, probed, plain, {"c": cutoff})
        _assert_same(EXISTS, probed, plain, {"c": cutoff})


def test_grouped_aggsum_is_not_probed():
    expr = AggSum(("p",), Product((MapRef("M", ("p",)), Cmp(VVar("p"), ">", VVar("c")))))
    probed, plain, table = _sources([((i,), 1) for i in range(6)])
    _assert_same(expr, probed, plain, {"c": 2})
    assert table.range_index("price").stats()["probes"] == 0


def test_match_range_pattern_shapes():
    assert match_range_pattern(GUARDED.term) is not None
    name, keys, guard, op, cutoff, cutoff_vars = match_range_pattern(REVERSED.term)
    assert op == "<="  # c >= p  ⇒  p <= c
    assert guard == "p" and cutoff_vars == frozenset({"c"})
    # Arithmetic cutoffs match; equality, key-vs-key, and repeated keys don't.
    arith = Product(
        (MapRef("M", ("p",)), Cmp(VVar("p"), ">", VArith("*", VConst(0.25), VVar("c"))))
    )
    assert match_range_pattern(arith) is not None
    eq = Product((MapRef("M", ("p",)), Cmp(VVar("p"), "=", VVar("c"))))
    assert match_range_pattern(eq) is None
    self_cmp = Product((MapRef("M", ("p", "q")), Cmp(VVar("p"), ">", VVar("q"))))
    assert match_range_pattern(self_cmp) is None
    repeated = Product((MapRef("M", ("p", "p")), Cmp(VVar("p"), ">", VVar("c"))))
    assert match_range_pattern(repeated) is None
