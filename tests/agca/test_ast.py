"""Tests for AGCA AST construction and structural helpers."""

import pytest

from repro.agca.ast import (
    AggSum,
    Cmp,
    Lift,
    MapRef,
    Product,
    Relation,
    Sum,
    Value,
    VArith,
    VConst,
    VFunc,
    VVar,
    constant_of,
    contains_relation,
    free_variables,
    is_constant_value,
    is_one_expr,
    is_zero_expr,
    maps_of,
    relation_atoms,
    relations_of,
    rename_variables,
    substitute_value,
    substitute_variable,
    value_variables,
    walk,
)
from repro.agca.builders import agg, cmp, const, exists, lift, mapref, neg, plus, prod, rel, val, var, vmul


def test_builders_flatten_products_and_sums():
    expr = prod(rel("R", "a"), prod(rel("S", "b"), const(2)))
    assert isinstance(expr, Product)
    assert len(expr.terms) == 3
    expr2 = plus(const(1), plus(const(2), const(3)))
    assert isinstance(expr2, Sum) and len(expr2.terms) == 3


def test_builders_promote_numbers():
    expr = prod(rel("R", "a"), 3)
    assert isinstance(expr.terms[1], Value)
    assert expr.terms[1].vexpr == VConst(3)


def test_empty_product_and_sum_are_identities():
    assert is_one_expr(prod())
    assert is_zero_expr(plus())


def test_single_term_builders_unwrap():
    atom = rel("R", "a")
    assert prod(atom) is atom
    assert plus(atom) is atom


def test_neg_is_product_with_minus_one():
    expr = neg(rel("R", "a"))
    assert isinstance(expr, Product)
    assert constant_of(expr.terms[0]) == -1


def test_constant_helpers():
    assert is_constant_value(const(5))
    assert constant_of(const(5)) == 5
    assert not is_constant_value(var("x"))
    with pytest.raises(ValueError):
        constant_of(var("x"))


def test_relation_and_mapref_columns_are_tuples():
    atom = Relation("R", ["a", "b"])
    assert atom.columns == ("a", "b")
    ref = MapRef("M", ["k"])
    assert ref.keys == ("k",)


def test_walk_visits_all_nodes():
    expr = agg(("a",), prod(rel("R", "a", "b"), cmp("a", "<", "b")))
    kinds = [type(node).__name__ for node in walk(expr)]
    assert kinds.count("Relation") == 1
    assert kinds.count("Cmp") == 1
    assert kinds[0] == "AggSum"


def test_relations_and_maps_of():
    expr = prod(rel("R", "a"), mapref("M1", "a"), lift("x", rel("S", "b")))
    assert relations_of(expr) == frozenset({"R", "S"})
    assert maps_of(expr) == frozenset({"M1"})
    assert contains_relation(expr, "S")
    assert not contains_relation(expr, "T")


def test_relation_atoms_keeps_duplicates_for_self_joins():
    expr = prod(rel("R", "a"), rel("R", "b"))
    assert len(relation_atoms(expr)) == 2


def test_free_variables_covers_all_positions():
    expr = agg(("g",), prod(rel("R", "g", "a"), lift("x", val(vmul("a", 2))), cmp("x", ">", "b")))
    assert free_variables(expr) >= {"g", "a", "x", "b"}


def test_value_variables_and_substitute_value():
    vexpr = VArith("+", VVar("a"), VFunc("f", (VVar("b"), VConst(1))))
    assert value_variables(vexpr) == {"a", "b"}
    substituted = substitute_value(vexpr, {"a": VConst(10)})
    assert value_variables(substituted) == {"b"}


def test_rename_variables_touches_every_position():
    expr = agg(("a",), prod(rel("R", "a", "b"), lift("x", val("b")), cmp("x", "=", "a")))
    renamed = rename_variables(expr, {"a": "z", "x": "y"})
    assert "a" not in free_variables(renamed)
    assert "z" in free_variables(renamed)
    assert isinstance(renamed, AggSum) and renamed.group == ("z",)


def test_rename_variables_empty_mapping_is_identity():
    expr = prod(rel("R", "a"), const(1))
    assert rename_variables(expr, {}) is expr


def test_substitute_variable_with_variable_renames_relations():
    expr = prod(rel("R", "a"), val("a"))
    replaced = substitute_variable(expr, "a", VVar("t"))
    assert rel("R", "t") in walk(replaced)


def test_substitute_variable_with_constant_skips_relation_columns():
    expr = prod(rel("R", "a"), val("a"), cmp("a", ">", 1))
    replaced = substitute_variable(expr, "a", VConst(5))
    # The relation atom still uses the variable; scalar positions got the constant.
    assert rel("R", "a") in walk(replaced)
    assert Value(VConst(5)) in walk(replaced)


def test_varith_rejects_unknown_operator():
    with pytest.raises(ValueError):
        VArith("%", VConst(1), VConst(2))


def test_nodes_are_hashable_and_comparable():
    a = prod(rel("R", "x"), cmp("x", ">", 0))
    b = prod(rel("R", "x"), cmp("x", ">", 0))
    assert a == b
    assert hash(a) == hash(b)
    assert a != prod(rel("R", "y"), cmp("y", ">", 0))


def test_exists_and_lift_nodes_expose_term():
    inner = agg((), rel("R", "a"))
    assert exists(inner).term is inner
    assert lift("v", inner).term is inner
    assert Lift("v", inner).var == "v"
