"""Tests for the delta transform, including semantic correctness properties.

The key property (checked both on hand-written queries and randomized
databases) is the definition of the delta:

    [[Q]](D + u) == [[Q]](D) + [[delta_u(Q)]](D)

evaluated with the trigger variables bound to the update's values.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.agca.builders import agg, cmp, const, exists, lift, plus, prod, rel, val, var, vmul
from repro.agca.evaluator import DictSource, Evaluator
from repro.core.gmr import GMR
from repro.core.rows import Row
from repro.delta.events import DELETE, INSERT, BulkUpdate, TriggerEvent
from repro.delta.rules import delta, delta_is_zero
from repro.errors import DeltaError
from repro.optimizer.simplify import simplify


def trigger(relation, columns, sign=INSERT, prefix=None):
    prefix = prefix or relation.lower()
    return TriggerEvent(relation, sign, tuple(columns), tuple(f"{prefix}_{c}" for c in columns))


def test_delta_of_constant_value_condition_is_zero():
    event = trigger("R", ("a",))
    assert delta_is_zero(delta(const(5), event))
    assert delta_is_zero(delta(val("x"), event))
    assert delta_is_zero(delta(cmp("x", "<", 3), event))


def test_delta_of_other_relation_is_zero():
    event = trigger("R", ("a",))
    assert delta_is_zero(delta(rel("S", "a"), event))


def test_delta_of_matching_relation_is_lift_product():
    event = trigger("R", ("a", "b"))
    result = delta(rel("R", "x", "y"), event)
    assert not delta_is_zero(result)
    # Evaluating the delta with the trigger bindings yields the single inserted tuple.
    value = Evaluator(DictSource()).evaluate(result, {"r_a": 1, "r_b": 2})
    assert value[{"x": 1, "y": 2}] == 1


def test_delta_of_deletion_has_negative_multiplicity():
    event = trigger("R", ("a",), sign=DELETE)
    result = delta(rel("R", "x"), event)
    value = Evaluator(DictSource()).evaluate(result, {"r_a": 7})
    assert value[{"x": 7}] == -1


def test_delta_arity_mismatch_raises():
    event = trigger("R", ("a", "b"))
    with pytest.raises(DeltaError):
        delta(rel("R", "x"), event)


def test_delta_distributes_over_sum():
    event = trigger("R", ("a",))
    expr = plus(rel("R", "x"), rel("S", "x"))
    result = delta(expr, event)
    # Only the R branch survives.
    value = Evaluator(DictSource()).evaluate(result, {"r_a": 1})
    assert value[{"x": 1}] == 1


def test_delta_product_leibniz_rule_second_order_constant():
    # Example 1: Q = Sum[](R(a) * S(b)); the second-order delta is the constant 1.
    expr = agg((), prod(rel("R", "a"), rel("S", "b")))
    d_r = delta(expr, trigger("R", ("a",)))
    d_rs = delta(d_r, trigger("S", ("b",)))
    simplified = simplify(d_rs, bound=("r_a", "s_b"))
    assert Evaluator(DictSource()).evaluate(simplified, {"r_a": 1, "s_b": 2}).scalar_value() == 1


def test_delta_of_self_join_example12():
    # Q = R(a) * R(a) * S(b); the delta wrt +R(x) simplifies to (2*R(x) + 1) * S(b).
    expr = prod(rel("R", "a"), rel("R", "a"), rel("S", "b"))
    event = trigger("R", ("a",), prefix="ins")
    source = DictSource(
        relations={"R": GMR.from_rows([{"a": 5}, {"a": 5}]), "S": GMR.from_rows([{"b": 1}])},
        schemas={"R": ("a",), "S": ("b",)},
    )
    d = simplify(delta(expr, event), bound=event.trigger_vars)
    result = Evaluator(source).evaluate(d, {"ins_a": 5})
    # Old R has multiplicity 2 at a=5: (2*2 + 1) = 5 new (a=5, b) combinations.
    assert result.total_multiplicity() == 5


def test_delta_of_lift_is_difference_of_lifts():
    nested = agg((), prod(rel("S", "c"), val("c")))
    expr = prod(rel("R", "a"), lift("z", nested), cmp("a", "<", "z"))
    event = trigger("S", ("c",))
    d = delta(expr, event)
    assert not delta_is_zero(d)
    # The unsimplified delta references the nested query twice (new minus old).
    from repro.agca.printer import to_string

    printed = to_string(d)
    assert printed.count("S(") >= 2


def test_delta_of_lift_without_matching_relation_is_zero():
    nested = agg((), prod(rel("S", "c"), val("c")))
    expr = prod(rel("R", "a"), lift("z", nested))
    assert delta_is_zero(delta(lift("z", nested), trigger("T", ("x",))))
    assert not delta_is_zero(delta(expr, trigger("R", ("a",))))


def test_delta_of_exists_uses_difference_form():
    expr = exists(agg((), rel("R", "a")))
    d = delta(expr, trigger("R", ("a",)))
    assert not delta_is_zero(d)


def test_bulk_update_delta_references_delta_relation():
    expr = agg((), prod(rel("R", "a"), rel("S", "b")))
    d = delta(expr, BulkUpdate("R", "delta_R"))
    from repro.agca.ast import relations_of

    assert "delta_R" in relations_of(d)
    assert "S" in relations_of(d)


def test_delta_of_mapref_is_rejected():
    from repro.agca.builders import mapref

    with pytest.raises(DeltaError):
        delta(mapref("M", "k"), trigger("R", ("a",)))


# ---------------------------------------------------------------------------
# Semantic correctness: Q(D + u) = Q(D) + delta_u(Q)(D), randomized.
# ---------------------------------------------------------------------------

QUERIES = {
    "join_sum": agg(
        (),
        prod(
            rel("R", "a", "b"), rel("S", "b", "c"), val(vmul("a", "c")),
        ),
    ),
    "group_join": agg(
        ("b",),
        prod(rel("R", "a", "b"), rel("S", "b", "c"), cmp("a", "<", "c")),
    ),
    "self_join": agg((), prod(rel("R", "a", "b"), rel("R", "a", "b2"))),
    "nested": agg(
        ("a",),
        prod(
            rel("R", "a", "b"),
            lift("z", agg((), prod(rel("S", "b2", "c"), cmp("b2", "=", "b"), val("c")))),
            cmp("b", "<", "z"),
        ),
    ),
}

SCHEMAS = {"R": ("a", "b"), "S": ("b", "c")}


def _random_database(rng):
    relations = {}
    for name, columns in SCHEMAS.items():
        rows = []
        for _ in range(rng.randint(0, 6)):
            rows.append({c: rng.randint(0, 3) for c in columns})
        relations[name] = GMR.from_rows(rows)
    return DictSource(relations=relations, schemas=SCHEMAS)


@settings(max_examples=40, deadline=None)
@given(
    query_name=st.sampled_from(sorted(QUERIES)),
    seed=st.integers(min_value=0, max_value=10_000),
    relation=st.sampled_from(["R", "S"]),
    sign=st.sampled_from([INSERT, DELETE]),
)
def test_delta_matches_recomputation(query_name, seed, relation, sign):
    rng = random.Random(seed)
    query = QUERIES[query_name]
    source = _random_database(rng)
    event = trigger(relation, SCHEMAS[relation], sign=sign, prefix=f"d_{relation.lower()}")
    values = tuple(rng.randint(0, 3) for _ in SCHEMAS[relation])

    evaluator = Evaluator(source)
    before = evaluator.evaluate(query)
    d = delta(query, event)
    delta_value = evaluator.evaluate(d, dict(zip(event.trigger_vars, values)))
    simplified_delta_value = evaluator.evaluate(
        simplify(d, bound=event.trigger_vars), dict(zip(event.trigger_vars, values))
    )

    # Apply the update to the stored relation and recompute from scratch.
    updated = dict(source._relations)  # test-only access to the backing dict
    changed = GMR(updated[relation])
    changed.add_tuple(Row(dict(zip(SCHEMAS[relation], values))), sign)
    updated[relation] = changed
    after = Evaluator(DictSource(relations=updated, schemas=SCHEMAS)).evaluate(query)

    assert after == before + delta_value
    assert after == before + simplified_delta_value
