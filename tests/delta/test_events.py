"""Tests for stream events and symbolic trigger events."""

import pytest

from repro.delta.events import (
    DELETE,
    INSERT,
    BulkUpdate,
    StreamEvent,
    TriggerEvent,
    delete,
    fresh_trigger_vars,
    insert,
    trigger_events_for,
)


def test_insert_delete_constructors():
    event = insert("R", 1, "x")
    assert event.relation == "R" and event.sign == INSERT and event.values == (1, "x")
    assert event.kind == "insert"
    assert delete("R", 1).kind == "delete"


def test_invalid_sign_rejected():
    with pytest.raises(ValueError):
        StreamEvent("R", (1,), 2)


def test_inverted_event_undoes():
    event = insert("R", 1)
    assert event.inverted() == delete("R", 1)
    assert event.inverted().inverted() == event


def test_trigger_event_validation():
    with pytest.raises(ValueError):
        TriggerEvent("R", INSERT, ("a", "b"), ("x",))
    with pytest.raises(ValueError):
        TriggerEvent("R", 3, ("a",), ("x",))


def test_trigger_event_name_and_kind():
    trigger = TriggerEvent("Lineitem", DELETE, ("a",), ("x",))
    assert trigger.kind == "delete"
    assert trigger.name == "delete_lineitem"


def test_bindings_for_matches_values():
    trigger = TriggerEvent("R", INSERT, ("a", "b"), ("r_a", "r_b"))
    assert trigger.bindings_for(insert("R", 1, 2)) == {"r_a": 1, "r_b": 2}


def test_bindings_for_wrong_relation_or_arity():
    trigger = TriggerEvent("R", INSERT, ("a",), ("r_a",))
    with pytest.raises(ValueError):
        trigger.bindings_for(insert("S", 1))
    with pytest.raises(ValueError):
        trigger.bindings_for(insert("R", 1, 2))


def test_fresh_trigger_vars_avoid_collisions():
    names = fresh_trigger_vars("R", ("a", "b"), avoid=["r_a"])
    assert names[0] != "r_a"
    assert len(set(names)) == 2


def test_trigger_events_for_builds_insert_and_delete():
    events = trigger_events_for({"R": ("a",), "S": ("b",)})
    assert len(events) == 4
    kinds = {(e.relation, e.kind) for e in events}
    assert ("R", "insert") in kinds and ("S", "delete") in kinds


def test_trigger_events_for_restricted_relations_and_no_deletes():
    events = trigger_events_for({"R": ("a",), "S": ("b",)}, relations=["R"], include_deletes=False)
    assert len(events) == 1
    assert events[0].relation == "R" and events[0].kind == "insert"


def test_bulk_update_repr():
    bulk = BulkUpdate("R", "delta_R")
    assert "R" in repr(bulk) and "delta_R" in repr(bulk)
