"""Tests for the SQL parser."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sql.ast import (
    BetweenExpr,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    ExistsExpr,
    FuncCall,
    InExpr,
    LikeExpr,
    Literal,
    SubqueryExpr,
    UnaryOp,
)
from repro.sql.parser import parse_sql


def test_simple_select_with_aggregate_and_group_by():
    query = parse_sql(
        "SELECT l.returnflag, SUM(l.quantity) AS qty FROM Lineitem l GROUP BY l.returnflag"
    )
    assert len(query.select) == 2
    assert query.select[1].alias == "qty"
    assert isinstance(query.select[1].expr, FuncCall)
    assert query.tables[0].table == "Lineitem" and query.tables[0].alias == "l"
    assert query.group_by == [ColumnRef("returnflag", "l")]


def test_table_alias_with_and_without_as():
    query = parse_sql("SELECT COUNT(*) FROM Orders AS o, Lineitem li")
    assert [t.alias for t in query.tables] == ["o", "li"]


def test_count_star_and_distinct_flag():
    query = parse_sql("SELECT COUNT(*) FROM R")
    call = query.select[0].expr
    assert call.star and not call.args
    distinct = parse_sql("SELECT COUNT(DISTINCT a) FROM R").select[0].expr
    assert distinct.distinct


def test_where_with_boolean_precedence():
    query = parse_sql("SELECT COUNT(*) FROM R WHERE a = 1 AND b = 2 OR c = 3")
    assert isinstance(query.where, BinaryOp) and query.where.op == "or"
    assert isinstance(query.where.left, BinaryOp) and query.where.left.op == "and"


def test_arithmetic_precedence():
    query = parse_sql("SELECT SUM(a + b * 2) FROM R")
    expr = query.select[0].expr.args[0]
    assert expr.op == "+" and expr.right.op == "*"


def test_parenthesised_expressions():
    query = parse_sql("SELECT SUM((a + b) * 2) FROM R")
    expr = query.select[0].expr.args[0]
    assert expr.op == "*" and expr.left.op == "+"


def test_unary_minus():
    expr = parse_sql("SELECT COUNT(*) FROM R WHERE a > -5").where
    assert isinstance(expr.right, UnaryOp) and expr.right.op == "-"


def test_between_and_not_between():
    query = parse_sql("SELECT COUNT(*) FROM R WHERE a BETWEEN 1 AND 5 AND b NOT BETWEEN 2 AND 3")
    left, right = query.where.left, query.where.right
    assert isinstance(left, BetweenExpr)
    assert isinstance(right, UnaryOp) and isinstance(right.operand, BetweenExpr)


def test_in_literal_list_and_not_in():
    query = parse_sql("SELECT COUNT(*) FROM R WHERE mode IN ('MAIL', 'SHIP') AND brand NOT IN ('X')")
    assert isinstance(query.where.left, InExpr) and not query.where.left.negated
    assert query.where.left.options == (Literal("MAIL"), Literal("SHIP"))
    assert query.where.right.negated


def test_in_subquery():
    query = parse_sql("SELECT COUNT(*) FROM R WHERE k IN (SELECT k2 FROM S)")
    assert isinstance(query.where, InExpr)
    assert query.where.subquery is not None


def test_like_and_not_like():
    query = parse_sql("SELECT COUNT(*) FROM R WHERE name LIKE '%green%' AND t NOT LIKE 'PROMO%'")
    assert isinstance(query.where.left, LikeExpr) and query.where.left.pattern == "%green%"
    assert query.where.right.negated


def test_exists_and_not_exists():
    query = parse_sql(
        "SELECT COUNT(*) FROM R WHERE EXISTS (SELECT a FROM S) AND NOT EXISTS (SELECT b FROM T)"
    )
    assert isinstance(query.where.left, ExistsExpr) and not query.where.left.negated
    assert isinstance(query.where.right, ExistsExpr) and query.where.right.negated


def test_scalar_subquery_in_comparison():
    query = parse_sql("SELECT COUNT(*) FROM R WHERE a < (SELECT SUM(b) FROM S WHERE S.k = R.k)")
    assert isinstance(query.where.right, SubqueryExpr)


def test_searched_case_expression():
    query = parse_sql(
        "SELECT SUM(CASE WHEN a > 1 THEN b ELSE 0 END) FROM R"
    )
    case = query.select[0].expr.args[0]
    assert isinstance(case, CaseExpr)
    assert case.default == Literal(0)


def test_simple_case_expression_is_desugared_to_equalities():
    query = parse_sql("SELECT SUM(CASE kind WHEN 'A' THEN 1 ELSE 0 END) FROM R")
    case = query.select[0].expr.args[0]
    condition, _ = case.branches[0]
    assert isinstance(condition, BinaryOp) and condition.op == "="


def test_date_literal_is_a_string_literal():
    query = parse_sql("SELECT COUNT(*) FROM R WHERE d >= DATE('1994-01-01')")
    assert query.where.right == Literal("1994-01-01")


def test_function_call_with_multiple_arguments():
    query = parse_sql("SELECT SUM(vec_length(x, y, z)) FROM R")
    call = query.select[0].expr.args[0]
    assert isinstance(call, FuncCall) and call.name == "vec_length" and len(call.args) == 3


def test_select_star_flag():
    query = parse_sql("SELECT * FROM R WHERE a = 1")
    assert query.select_star and query.select == []


def test_missing_from_is_an_error():
    with pytest.raises(SQLSyntaxError):
        parse_sql("SELECT 1")


def test_order_by_and_having_are_rejected():
    with pytest.raises(SQLSyntaxError):
        parse_sql("SELECT a FROM R ORDER BY a")
    with pytest.raises(SQLSyntaxError):
        parse_sql("SELECT a FROM R GROUP BY a HAVING COUNT(*) > 1")


def test_from_subquery_is_rejected():
    with pytest.raises(SQLSyntaxError):
        parse_sql("SELECT x FROM (SELECT a AS x FROM R) sub")


def test_is_null_is_rejected():
    with pytest.raises(SQLSyntaxError):
        parse_sql("SELECT COUNT(*) FROM R WHERE a IS NULL")


def test_trailing_garbage_is_rejected():
    with pytest.raises(SQLSyntaxError):
        parse_sql("SELECT COUNT(*) FROM R extra nonsense ,")


def test_case_without_branches_is_rejected():
    with pytest.raises(SQLSyntaxError):
        parse_sql("SELECT SUM(CASE ELSE 1 END) FROM R")


def test_semicolon_terminated_statement():
    query = parse_sql("SELECT COUNT(*) FROM R;")
    assert query.tables[0].table == "R"
