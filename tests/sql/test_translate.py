"""Tests for the SQL -> AGCA translation."""

import pytest

from repro.agca.ast import Cmp, Lift, Relation
from repro.agca.evaluator import Evaluator
from repro.agca.printer import to_string
from repro.agca.schema import input_variables, output_variables
from repro.core.gmr import GMR
from repro.errors import SQLTranslationError
from repro.runtime.database import Database
from repro.sql import Catalog, parse_sql_query

CATALOG = Catalog.from_dict(
    {
        "R": ("k", "grp", "x"),
        "S": ("k", "y"),
        "Nation": ("k", "label"),
    },
    static=("Nation",),
)


def evaluate_roots(translated, tables):
    db = Database(translated.schemas())
    for name, rows in tables.items():
        db.load(name, rows)
    evaluator = Evaluator(db)
    return {name: evaluator.evaluate(expr) for name, expr in translated.roots().items()}


def test_single_sum_aggregate_with_group_by():
    translated = parse_sql_query(
        "SELECT r.grp, SUM(r.x) AS total FROM R r GROUP BY r.grp", CATALOG, name="T"
    )
    assert list(translated.roots()) == ["T_total"]
    assert translated.group_vars == ("r_grp",)
    assert output_variables(translated.roots()["T_total"]) == {"r_grp"}
    results = evaluate_roots(translated, {"R": [(1, "a", 10), (2, "a", 5), (3, "b", 1)]})
    assert results["T_total"][{"r_grp": "a"}] == 15


def test_count_star_and_avg_expand_to_two_maps():
    translated = parse_sql_query(
        "SELECT COUNT(*) AS n, AVG(r.x) AS mean FROM R r", CATALOG, name="T"
    )
    names = set(translated.roots())
    assert "T_n" in names
    assert {"T_mean_sum", "T_mean_cnt"} <= names
    derived = [c for c in translated.outputs if c.kind == "derived"]
    assert [c.name for c in derived] == ["mean"]


def test_join_condition_becomes_shared_variable_or_condition():
    translated = parse_sql_query(
        "SELECT SUM(r.x) AS total FROM R r, S s WHERE r.k = s.k", CATALOG, name="T"
    )
    root = translated.roots()["T_total"]
    results = evaluate_roots(
        translated, {"R": [(1, "a", 10), (2, "a", 7)], "S": [(1, 0), (1, 1), (3, 0)]}
    )
    assert results["T_total"].scalar_value() == 20


def test_where_constant_filter_and_like():
    translated = parse_sql_query(
        "SELECT SUM(r.x) AS total FROM R r WHERE r.grp = 'a' AND r.grp LIKE 'a%'",
        CATALOG,
        name="T",
    )
    results = evaluate_roots(translated, {"R": [(1, "a", 10), (2, "b", 5)]})
    assert results["T_total"].scalar_value() == 10


def test_or_condition_does_not_double_count():
    translated = parse_sql_query(
        "SELECT COUNT(*) AS n FROM R r WHERE r.x > 0 OR r.grp = 'a'", CATALOG, name="T"
    )
    results = evaluate_roots(
        translated, {"R": [(1, "a", 10), (2, "b", 5), (3, "a", -1), (4, "b", -2)]}
    )
    # Rows 1 (both true), 2 (x>0), 3 (grp=a): row 1 must count once only.
    assert results["T_n"].scalar_value() == 3


def test_in_list_and_between():
    translated = parse_sql_query(
        "SELECT COUNT(*) AS n FROM R r WHERE r.grp IN ('a', 'c') AND r.x BETWEEN 1 AND 10",
        CATALOG,
        name="T",
    )
    results = evaluate_roots(
        translated, {"R": [(1, "a", 5), (2, "c", 50), (3, "b", 5), (4, "a", 10)]}
    )
    assert results["T_n"].scalar_value() == 2


def test_case_expression_in_aggregate():
    translated = parse_sql_query(
        "SELECT SUM(CASE WHEN r.grp = 'a' THEN r.x ELSE 0 END) AS only_a FROM R r",
        CATALOG,
        name="T",
    )
    results = evaluate_roots(translated, {"R": [(1, "a", 5), (2, "b", 100)]})
    assert results["T_only_a"].scalar_value() == 5


def test_correlated_scalar_subquery_has_no_free_inputs_overall():
    translated = parse_sql_query(
        """
        SELECT SUM(r.x) AS total FROM R r
        WHERE r.x < (SELECT SUM(s.y) FROM S s WHERE s.k = r.k)
        """,
        CATALOG,
        name="T",
    )
    root = translated.roots()["T_total"]
    assert not input_variables(root)
    from repro.agca.ast import walk

    assert any(isinstance(node, Lift) for node in walk(root))
    results = evaluate_roots(
        translated,
        {"R": [(1, "a", 3), (2, "a", 99)], "S": [(1, 10), (2, 5)]},
    )
    assert results["T_total"].scalar_value() == 3


def test_exists_and_not_exists_translation():
    translated = parse_sql_query(
        """
        SELECT COUNT(*) AS n FROM R r
        WHERE EXISTS (SELECT s.k FROM S s WHERE s.k = r.k)
          AND NOT EXISTS (SELECT s2.k FROM S s2 WHERE s2.k = r.x)
        """,
        CATALOG,
        name="T",
    )
    results = evaluate_roots(
        translated, {"R": [(1, "a", 77), (2, "a", 1)], "S": [(1, 0), (2, 0)]}
    )
    # Row (1): exists k=1 yes, not-exists on x=77 yes -> counted.
    # Row (2): exists yes, but x=1 appears in S -> excluded.
    assert results["T_n"].scalar_value() == 1


def test_in_subquery_translation():
    translated = parse_sql_query(
        "SELECT COUNT(*) AS n FROM R r WHERE r.k IN (SELECT s.k FROM S s WHERE s.y > 0)",
        CATALOG,
        name="T",
    )
    results = evaluate_roots(
        translated, {"R": [(1, "a", 0), (2, "a", 0), (3, "a", 0)], "S": [(1, 5), (2, 0)]}
    )
    assert results["T_n"].scalar_value() == 1


def test_static_tables_flow_through_catalog():
    translated = parse_sql_query(
        "SELECT SUM(r.x) AS total FROM R r, Nation n WHERE r.k = n.k AND n.label = 'DE'",
        CATALOG,
        name="T",
    )
    assert translated.static_relations() == ("Nation",)


def test_non_aggregate_query_becomes_multiplicity_map():
    translated = parse_sql_query(
        "SELECT r.k, r.grp FROM R r WHERE r.x > 0", CATALOG, name="T"
    )
    (root_name,) = translated.roots()
    root = translated.roots()[root_name]
    assert output_variables(root) == {"r_k", "r_grp"}
    results = evaluate_roots(translated, {"R": [(1, "a", 5), (1, "a", 3), (2, "b", -1)]})
    assert results[root_name][{"r_k": 1, "r_grp": "a"}] == 2


def test_derived_output_combining_two_aggregates():
    translated = parse_sql_query(
        "SELECT 100 * SUM(r.x) / LISTMAX(1, COUNT(*)) AS avg_pct FROM R r", CATALOG, name="T"
    )
    assert len(translated.roots()) == 2
    derived = [c for c in translated.outputs if c.kind == "derived"]
    assert len(derived) == 1


def test_alias_resolution_errors():
    with pytest.raises(SQLTranslationError):
        parse_sql_query("SELECT SUM(z.x) AS t FROM R r", CATALOG)
    with pytest.raises(SQLTranslationError):
        parse_sql_query("SELECT SUM(r.nosuch) AS t FROM R r", CATALOG)
    with pytest.raises(SQLTranslationError):
        parse_sql_query("SELECT SUM(k) AS t FROM R r, S s", CATALOG)  # ambiguous


def test_unsupported_features_raise_translation_errors():
    with pytest.raises(SQLTranslationError):
        parse_sql_query("SELECT MIN(r.x) AS m FROM R r", CATALOG)
    with pytest.raises(SQLTranslationError):
        parse_sql_query("SELECT COUNT(DISTINCT r.x) AS m FROM R r", CATALOG)
    with pytest.raises(SQLTranslationError):
        parse_sql_query("SELECT * FROM R r", CATALOG)
    with pytest.raises(SQLTranslationError):
        parse_sql_query("SELECT r.k, SUM(r.x) AS t FROM R r", CATALOG)  # k not grouped
    with pytest.raises(SQLTranslationError):
        parse_sql_query(
            "SELECT COUNT(*) AS n FROM R r WHERE r.x > 0 OR EXISTS (SELECT s.k FROM S s)",
            CATALOG,
        )


def test_duplicate_alias_rejected():
    with pytest.raises(SQLTranslationError):
        parse_sql_query("SELECT COUNT(*) AS n FROM R r, S r", CATALOG)


def test_self_join_aliases_get_distinct_variables():
    translated = parse_sql_query(
        "SELECT SUM(a.x) AS t FROM R a, R b WHERE a.k = b.k", CATALOG, name="T"
    )
    root = translated.roots()["T_t"]
    atoms = [n.columns for n in __import__("repro.agca.ast", fromlist=["walk"]).walk(root) if isinstance(n, Relation)]
    assert len(atoms) == 2
    assert atoms[0] != atoms[1]
