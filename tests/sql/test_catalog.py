"""Tests for the schema catalog."""

import pytest

from repro.errors import SQLTranslationError
from repro.sql.catalog import Catalog, TableSchema


def test_from_dict_and_lookup_case_insensitive():
    catalog = Catalog.from_dict({"Orders": ("OrderKey", "CustKey")}, static=())
    assert "orders" in catalog and "ORDERS" in catalog
    table = catalog.table("ORDERS")
    assert table.columns == ("orderkey", "custkey")
    assert table.has_column("ORDERKEY")


def test_unknown_table_raises():
    with pytest.raises(SQLTranslationError):
        Catalog().table("missing")


def test_static_and_stream_partition():
    catalog = Catalog.from_dict(
        {"Nation": ("k",), "Orders": ("o",)}, static=("Nation",)
    )
    assert catalog.static_relations() == ("Nation",)
    assert catalog.stream_relations() == ("Orders",)


def test_schemas_round_trip():
    catalog = Catalog([TableSchema("R", ("a", "b")), TableSchema("S", ("c",), static=True)])
    assert catalog.schemas() == {"R": ("a", "b"), "S": ("c",)}
    assert len(list(catalog)) == 2
