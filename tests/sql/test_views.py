"""Tests for reconstructing SQL result rows from engine views."""

import pytest

from repro.compiler.hoivm import compile_query
from repro.delta.events import insert
from repro.runtime.engine import IncrementalEngine
from repro.sql import Catalog, QueryView, parse_sql_query

CATALOG = Catalog.from_dict({"R": ("k", "grp", "x")})


def build(sql, name="T"):
    translated = parse_sql_query(sql, CATALOG, name=name)
    program = compile_query(translated.roots(), translated.schemas())
    engine = IncrementalEngine(program)
    return translated, engine


def test_rows_with_group_and_aggregate_columns():
    translated, engine = build("SELECT r.grp, SUM(r.x) AS total FROM R r GROUP BY r.grp")
    for event in [insert("R", 1, "a", 10), insert("R", 2, "a", 5), insert("R", 3, "b", 1)]:
        engine.apply(event)
    view = QueryView(translated, engine)
    rows = {row["grp"]: row["total"] for row in view.rows()}
    assert rows == {"a": 15, "b": 1}
    assert view.as_dict() == {("a",): 15, ("b",): 1}


def test_derived_avg_output():
    translated, engine = build("SELECT r.grp, AVG(r.x) AS mean FROM R r GROUP BY r.grp")
    for event in [insert("R", 1, "a", 10), insert("R", 2, "a", 20)]:
        engine.apply(event)
    view = QueryView(translated, engine)
    assert view.as_dict(value_column="mean") == {("a",): 15}


def test_scalar_query_view():
    translated, engine = build("SELECT SUM(r.x) AS total FROM R r")
    view = QueryView(translated, engine)
    assert view.scalar() == 0  # empty database
    engine.apply(insert("R", 1, "a", 42))
    assert view.scalar() == 42
    assert view.scalar("total") == 42


def test_scalar_with_multiple_value_columns_requires_name():
    translated, engine = build("SELECT SUM(r.x) AS s, COUNT(*) AS c FROM R r")
    engine.apply(insert("R", 1, "a", 5))
    view = QueryView(translated, engine)
    from repro.errors import RuntimeEngineError

    with pytest.raises(RuntimeEngineError):
        view.scalar()
    assert view.scalar("c") == 1


def test_multi_value_as_dict_returns_nested_mapping():
    translated, engine = build(
        "SELECT r.grp, SUM(r.x) AS s, COUNT(*) AS c FROM R r GROUP BY r.grp"
    )
    engine.apply(insert("R", 1, "a", 5))
    engine.apply(insert("R", 2, "a", 6))
    view = QueryView(translated, engine)
    assert view.as_dict() == {("a",): {"s": 11, "c": 2}}
