"""Tests for the SQL tokenizer."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sql.lexer import Token, iter_statements, tokenize


def kinds(sql):
    return [t.kind for t in tokenize(sql)]


def test_basic_tokens():
    tokens = tokenize("SELECT a, b FROM t WHERE a >= 1.5")
    assert [t.kind for t in tokens[:3]] == ["KEYWORD", "IDENT", "COMMA"]
    assert tokens[-1].kind == "EOF"
    assert any(t.kind == "NUMBER" and t.text == "1.5" for t in tokens)
    assert any(t.kind == "OP" and t.text == ">=" for t in tokens)


def test_keywords_are_case_insensitive():
    assert tokenize("select")[0].kind == "KEYWORD"
    assert tokenize("SeLeCt")[0].kind == "KEYWORD"
    assert tokenize("selector")[0].kind == "IDENT"


def test_string_literals_with_escaped_quotes():
    tokens = tokenize("SELECT 'it''s'")
    strings = [t for t in tokens if t.kind == "STRING"]
    assert strings and strings[0].text == "'it''s'"


def test_comments_and_whitespace_are_skipped():
    tokens = tokenize("SELECT a -- trailing comment\nFROM t")
    assert all(t.kind != "COMMENT" for t in tokens)
    assert len([t for t in tokens if t.kind == "KEYWORD"]) == 2


def test_qualified_names_and_operators():
    tokens = tokenize("o.custkey <> c.custkey")
    assert [t.kind for t in tokens[:-1]] == ["IDENT", "DOT", "IDENT", "OP", "IDENT", "DOT", "IDENT"]


def test_illegal_character_reports_position():
    with pytest.raises(SQLSyntaxError) as excinfo:
        tokenize("SELECT @a")
    assert excinfo.value.position == 7


def test_token_helpers():
    token = Token("KEYWORD", "Select", 0)
    assert token.upper == "SELECT"
    assert token.is_keyword("select", "from")
    assert not token.is_keyword("where")


def test_iter_statements_splits_on_semicolons():
    script = "SELECT 1 FROM t; \n SELECT 2 FROM u ;"
    assert len(list(iter_statements(script))) == 2
