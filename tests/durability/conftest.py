"""Shared fixtures for the durability tests.

Q1 (single relation, linear aggregate, bounded live working set so the
stream deletes as well as inserts) is the default workload; Q3 adds a join
with a static table, which recovery must restore without reloading.
"""

import pytest

from dur_helpers import make_workload_fixture


@pytest.fixture(scope="package")
def q1():
    fixture = make_workload_fixture("Q1", events=300, max_live_orders=20)
    assert any(event.sign < 0 for event in fixture.events)
    return fixture


@pytest.fixture(scope="package")
def q3():
    return make_workload_fixture("Q3", events=260, max_live_orders=25)
