"""Client-side robustness: reconnect with backoff, idempotent wire ingest."""

import pytest

from repro.errors import ServiceError
from repro.service import ServiceClient, start_in_thread
from dur_helpers import build_durable_service, load_statics, typed


def test_client_survives_a_server_restart(q1, tmp_path):
    """Kill the server between requests: the same client object reconnects
    (exponential backoff + jitter) and its retried ingest is deduplicated by
    batch id instead of double-applied."""
    service = build_durable_service(q1, base=tmp_path)
    handle = start_in_thread(service)
    client = ServiceClient(*handle.address, timeout=5)
    try:
        client.ingest(q1.events[:60], batch_id="first")
        before = client.query(q1.root)

        # The "crash": server thread and service both go away...
        handle.stop()
        service.close()
        # ...and a recovered service comes back on the same port.
        service = build_durable_service(q1, base=tmp_path, statics=False)
        service.recover(
            load_statics=lambda: load_statics(service, q1.program, q1.statics)
        )
        handle = start_in_thread(service, host=handle.host, port=handle.port)

        # Same client object: the next request transparently reconnects.
        after = client.query(q1.root)
        assert client.reconnects >= 1
        assert after.version == before.version == 60
        assert typed(after.entries) == typed(before.entries)

        # The ack of "first" could have been lost in the crash; the retry
        # must be acknowledged, not applied again.
        retried = client.ingest(q1.events[:60], batch_id="first")
        assert retried.deduplicated and retried.version == 60
        fresh = client.ingest(q1.events[60:90], batch_id="second")
        assert not fresh.deduplicated and fresh.version == 90
    finally:
        client.close()
        handle.stop()
        service.close()


def test_client_gives_up_after_exhausting_retries(q1):
    from repro.service import ViewService, engine_for_mode

    live = ViewService(engine_for_mode(q1.program, "incremental"))
    handle = start_in_thread(live)
    client = ServiceClient(*handle.address, timeout=2, retries=1, backoff=0.01)
    handle.stop()
    live.close()
    with pytest.raises(ServiceError, match="after 2 attempt"):
        client.ping()
    client.close()


def test_closed_client_refuses_requests(q1, tmp_path):
    service = build_durable_service(q1, base=tmp_path)
    handle = start_in_thread(service)
    client = ServiceClient(*handle.address, timeout=5)
    client.close()
    with pytest.raises(ServiceError, match="closed"):
        client.ping()
    handle.stop()
    service.close()
