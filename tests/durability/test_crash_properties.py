"""kill -9 property suite: recovery is bit-identical from *any* crash point.

Each case forks a child that runs a durable ingest/checkpoint workload with a
named crash site armed (``repro.durability.faults``); the site fires
``os._exit(137)`` — indistinguishable from kill -9, no unwinding, no flushes.
The parent then recovers from whatever the child left on disk, finishes the
stream from the recovered version, and requires the final views to be
bit-identical (values *and* types) to an uninterrupted run.

Covered: every named crash site, crashes *during recovery itself*, and a
seeded sweep of random (site, occurrence) pairs for each engine mode.
"""

import os
import random

import pytest

from repro.durability import CRASH_EXIT_STATUS, CRASH_SITES, arm
from dur_helpers import build_durable_service, load_statics, reference_entries, typed

EVENTS = 200
STEP = 20
ENGINE_MODES = {
    "single": ("incremental", {}),
    "compiled": ("compiled", {}),
    "batched": ("batched", {"batch_size": 13}),
}
SERVICE_KWARGS = {"checkpoint_full_every": 3, "fsync_every": 1}
RANDOM_POINTS_PER_MODE = 20


def run_workload(fixture, base, mode, kwargs, events=EVENTS):
    """The child's life: ingest in batches, checkpoint every second batch."""
    service = build_durable_service(
        fixture, mode, base=base, **SERVICE_KWARGS, **kwargs
    )
    for index, start in enumerate(range(0, events, STEP)):
        service.ingest(fixture.events[start:start + STEP])
        if index % 2 == 1:
            service.checkpoint()
    service.close()


def in_forked_child(fn) -> int:
    """Run ``fn`` in a forked child; returns the child's exit status."""
    pid = os.fork()
    if pid == 0:
        status = 1
        try:
            fn()
            status = 0
        except BaseException:
            status = 1
        finally:
            os._exit(status)
    _, wait_status = os.waitpid(pid, 0)
    return os.waitstatus_to_exitcode(wait_status)


def crash_workload(fixture, base, mode, kwargs, site, hits) -> int:
    def child():
        arm(site, hits)
        run_workload(fixture, base, mode, kwargs)

    return in_forked_child(child)


def recover_and_verify(fixture, base, mode, kwargs, expected):
    """The property: recover, finish the stream, demand bit-identity."""
    service = build_durable_service(
        fixture, mode, base=base, statics=False, **SERVICE_KWARGS, **kwargs
    )
    report = service.recover(
        load_statics=lambda: load_statics(service, fixture.program, fixture.statics)
    )
    version = service.version
    assert version % STEP == 0, (
        f"recovered to mid-batch version {version}: the WAL acknowledged a "
        f"partial batch"
    )
    service.ingest(fixture.events[version:])
    got = typed(service.query(fixture.root).entries)
    assert got == expected, f"views diverge after recovery at version {version}"
    service.close()
    return report


@pytest.fixture(scope="module")
def expected(q1):
    return typed(
        reference_entries(q1.program, q1.statics, q1.events, EVENTS, q1.root)
    )


@pytest.fixture(scope="module")
def q1():
    # Shadows the package fixture: the stream must end exactly where the
    # reference (and every recovered run) stops ingesting.
    from dur_helpers import make_workload_fixture

    return make_workload_fixture("Q1", events=EVENTS, max_live_orders=20)


# -- every named crash site --------------------------------------------------------


@pytest.mark.parametrize("site", [s for s in CRASH_SITES
                                  if not s.startswith("recovery.")])
def test_every_crash_site_recovers_bit_identically(q1, expected, tmp_path, site):
    status = crash_workload(q1, tmp_path, "incremental", {}, site, hits=2)
    # Rare sites (e.g. wal.pruned with nothing to prune) may never fire; a
    # clean exit still has to satisfy the recovery property.
    assert status in (0, CRASH_EXIT_STATUS)
    recover_and_verify(q1, tmp_path, "incremental", {}, expected)


@pytest.mark.parametrize("site", ["recovery.restored", "recovery.replayed"])
def test_crashing_during_recovery_recovers_on_the_next_attempt(
    q1, expected, tmp_path, site
):
    """Recovery is idempotent: a crash mid-recovery leaves a state the next
    recovery handles — no double-applied WAL batches, no lost chain links."""
    def die_mid_stream():
        run_workload(q1, tmp_path, "incremental", {}, events=140)
        os._exit(CRASH_EXIT_STATUS)

    assert in_forked_child(die_mid_stream) == CRASH_EXIT_STATUS

    def crash_recovering():
        arm(site, 1)
        service = build_durable_service(
            q1, "incremental", base=tmp_path, statics=False, **SERVICE_KWARGS
        )
        service.recover(
            load_statics=lambda: load_statics(service, q1.program, q1.statics)
        )

    assert in_forked_child(crash_recovering) == CRASH_EXIT_STATUS
    recover_and_verify(q1, tmp_path, "incremental", {}, expected)


# -- seeded random crash points per engine mode ------------------------------------


@pytest.mark.parametrize("mode_name", list(ENGINE_MODES))
def test_random_crash_points_recover_bit_identically(
    q1, expected, tmp_path, mode_name
):
    mode, kwargs = ENGINE_MODES[mode_name]
    rng = random.Random(f"crash-{mode_name}")
    crashed = 0
    for point in range(RANDOM_POINTS_PER_MODE):
        base = tmp_path / f"point{point}"
        site = rng.choice(CRASH_SITES)
        hits = rng.randint(1, 8)
        status = crash_workload(q1, base, mode, kwargs, site, hits)
        assert status in (0, CRASH_EXIT_STATUS), (
            f"point {point}: site {site} x{hits} exited {status}"
        )
        crashed += status == CRASH_EXIT_STATUS
        recover_and_verify(q1, base, mode, kwargs, expected)
    assert crashed >= RANDOM_POINTS_PER_MODE // 2, (
        f"only {crashed} of {RANDOM_POINTS_PER_MODE} points actually crashed; "
        f"the sweep is not exercising recovery"
    )
