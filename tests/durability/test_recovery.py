"""Recovery orchestration: incremental checkpoint chains + WAL tail replay.

Every test asserts *bit-identical* recovery — values and their runtime types
(int vs float vs Fraction) — because the paper's aggregates are only correct
if exactness survives a restart.
"""

import pytest

from repro.errors import ServiceError
from dur_helpers import build_durable_service, load_statics, typed

ENGINE_MODES = [
    ("incremental", {}),
    ("compiled", {}),
    ("batched", {"batch_size": 13}),
]


def run_with_cuts(fixture, tmp_path, mode="incremental", events=200, step=20,
                  **kwargs):
    """Ingest ``events`` in ``step``-sized batches, checkpointing every batch."""
    service = build_durable_service(fixture, mode, base=tmp_path, **kwargs)
    for start in range(0, events, step):
        service.ingest(fixture.events[start:start + step])
        service.checkpoint()
    return service


def recover_and_finish(fixture, tmp_path, mode="incremental", **kwargs):
    """Recover a fresh service, ingest whatever the stream still holds."""
    service = build_durable_service(fixture, mode, base=tmp_path, statics=False,
                                    **kwargs)
    report = service.recover(
        load_statics=lambda: load_statics(service, fixture.program, fixture.statics)
    )
    service.ingest(fixture.events[service.version:])
    return service, report


def reference_views(fixture):
    from dur_helpers import reference_entries

    return reference_entries(
        fixture.program, fixture.statics, fixture.events, None, fixture.root
    )


# -- the happy path ---------------------------------------------------------------


@pytest.mark.parametrize("mode,kwargs", ENGINE_MODES)
def test_chain_plus_wal_tail_recovers_bit_identically(q3, tmp_path, mode, kwargs):
    """Base + delta chain + WAL tail: a service killed mid-stream recovers to
    exactly the state an uninterrupted run reaches."""
    first = run_with_cuts(q3, tmp_path, mode, events=200, checkpoint_full_every=3,
                          **kwargs)
    first.ingest(q3.events[200:240])  # tail lives only in the WAL
    first.close()

    recovered, report = recover_and_finish(q3, tmp_path, mode, **kwargs)
    assert report["restored"] and report["wal_batches_replayed"] >= 1
    assert typed(recovered.query(q3.root).entries) == typed(reference_views(q3))
    stats = recovered.statistics()
    assert stats["recovering"] is False
    assert stats["durability"]["wal"]["end_offset"] == len(q3.events)
    recovered.close()


def test_cold_start_replays_the_whole_wal(q3, tmp_path):
    """No checkpoints at all: statics load via the callback, then the log
    replays from offset zero."""
    first = build_durable_service(q3, base=tmp_path)
    first.ingest(q3.events[:120])
    first.close()

    recovered, report = recover_and_finish(q3, tmp_path)
    assert not report["restored"]
    assert report["wal_batches_replayed"] == 1
    assert typed(recovered.query(q3.root).entries) == typed(reference_views(q3))
    recovered.close()


def test_reads_are_refused_until_recovery_catches_up(q1, tmp_path):
    first = build_durable_service(q1, base=tmp_path)
    first.ingest(q1.events[:100])
    first.checkpoint()
    first.close()

    service = build_durable_service(q1, base=tmp_path, statics=False)
    probed = {}

    # A service with checkpoints never fires the statics hook, so probe the
    # mid-recovery contract on the cold-start path of a checkpoint-less
    # sibling: while its recover() runs, reads and ingest must raise but
    # statistics() must keep working (and say so).
    sibling = build_durable_service(q1, base=tmp_path / "cold", statics=False)

    def probe():  # runs mid-recovery (the cold-start statics hook)
        probed["stats"] = sibling.statistics()
        with pytest.raises(ServiceError, match="recovering"):
            sibling.query(q1.root)
        with pytest.raises(ServiceError, match="recovering"):
            sibling.ingest(q1.events[:1])

    sibling.recover(load_statics=probe)
    assert probed["stats"]["recovering"] is True
    sibling.close()

    report = service.recover()
    assert report["restored"] and service.statistics()["recovering"] is False
    assert service.version == 100
    service.close()


# -- corruption (satellite: corrupt base / mid-chain delta / WAL tail) -------------


def test_corrupt_newest_base_falls_back_and_walks_the_shared_chain(q3, tmp_path):
    service = run_with_cuts(q3, tmp_path, events=200, checkpoint_full_every=3)
    service.close()
    bases = service.checkpoints.list()
    assert len(bases) == 2, "expected pruned layout with two bases"
    bases[-1].path.write_bytes(bases[-1].path.read_bytes()[:32])

    recovered, report = recover_and_finish(q3, tmp_path)
    assert report["restored"]
    assert typed(recovered.query(q3.root).entries) == typed(reference_views(q3))
    recovered.close()


def test_corrupt_mid_chain_delta_stops_the_walk_and_wal_covers_the_rest(
    q3, tmp_path
):
    service = run_with_cuts(q3, tmp_path, events=200, checkpoint_full_every=3)
    service.close()
    bases = service.checkpoints.list()
    deltas = service.checkpoints.list_deltas()
    # Kill the newest base so restore must walk the older base's chain, and
    # corrupt a delta in the middle of that chain.
    bases[-1].path.write_bytes(b"\x80not a checkpoint")
    middle = [d for d in deltas if bases[0].version < d.version < bases[-1].version]
    assert middle, "expected deltas between the two bases"
    middle[0].path.write_bytes(middle[0].path.read_bytes()[:16])

    recovered, report = recover_and_finish(q3, tmp_path)
    assert report["restored"]
    assert report["wal_batches_replayed"] >= 1  # the chain alone cannot reach 200
    assert typed(recovered.query(q3.root).entries) == typed(reference_views(q3))
    recovered.close()


def test_corrupt_wal_tail_truncates_to_the_durable_prefix(q3, tmp_path):
    service = run_with_cuts(q3, tmp_path, events=200, checkpoint_full_every=3)
    service.ingest(q3.events[200:220])
    service.ingest(q3.events[220:240])
    service.close()
    # Tear the newest WAL segment mid-record: the 220..240 batch is damaged.
    segments = sorted((tmp_path / "wal").glob("wal-*.log"))
    tail = segments[-1]
    tail.write_bytes(tail.read_bytes()[:-40])

    recovered, report = recover_and_finish(q3, tmp_path)
    assert report["restored"]
    # Recovery caught up to the last *intact* record, then our re-ingest of
    # events[version:] replayed the torn batch from the source.
    assert typed(recovered.query(q3.root).entries) == typed(reference_views(q3))
    recovered.close()


# -- idempotent ingest -------------------------------------------------------------


def test_batch_ids_deduplicate_within_a_run(q1, tmp_path):
    service = build_durable_service(q1, base=tmp_path)
    first = service.ingest(q1.events[:30], batch_id="batch-a")
    assert not first.deduplicated and service.version == 30
    again = service.ingest(q1.events[:30], batch_id="batch-a")
    assert again.deduplicated and again.version == 30
    assert service.version == 30
    assert typed(service.query(q1.root).entries) == typed(
        reference_views_prefix(q1, 30)
    )
    service.close()


def test_batch_ids_deduplicate_across_restart_via_the_wal(q1, tmp_path):
    """The retry window a crash opens: the ack is lost but the batch is in
    the log, so the client's retry after recovery must not double-apply."""
    service = build_durable_service(q1, base=tmp_path)
    service.ingest(q1.events[:30], batch_id="batch-a")
    service.close()

    recovered, _ = recover_and_finish(q1, tmp_path)
    assert recovered.version == len(q1.events)
    retried = recovered.ingest(q1.events[:30], batch_id="batch-a")
    assert retried.deduplicated
    assert recovered.version == len(q1.events)
    assert typed(recovered.query(q1.root).entries) == typed(reference_views(q1))
    recovered.close()


def reference_views_prefix(fixture, version):
    from dur_helpers import reference_entries

    return reference_entries(
        fixture.program, fixture.statics, fixture.events, version, fixture.root
    )
