"""Write-ahead log unit tests: append/replay round trips, group fsync,
torn-tail truncation, segment rotation and GC, and the batch-id dedup index."""

from fractions import Fraction

import pytest

from repro.delta.events import delete, insert
from repro.durability import WriteAheadLog
from repro.errors import DurabilityError


def batch(start, count=2):
    """A deterministic little batch mixing signs and value types."""
    out = []
    for i in range(count):
        n = start + i
        if n % 3 == 2:
            out.append(delete("R", n, float(n), Fraction(n, 7)))
        else:
            out.append(insert("R", n, float(n), Fraction(n, 7)))
    return out


def fill(wal, batches, size=2, batch_ids=False):
    for i in range(batches):
        wal.append(
            wal.end_offset,
            batch(i * size, size),
            batch_id=f"b{i}" if batch_ids else None,
        )


# -- round trips ------------------------------------------------------------------


def test_append_replay_round_trip_preserves_values_and_types(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        events = batch(0, 5)
        wal.append(0, events, batch_id="first")
        wal.append(5, batch(5, 3))
    reopened = WriteAheadLog(tmp_path)
    records = list(reopened.replay())
    assert [(r.offset, r.count, r.batch_id) for r in records] == [
        (0, 5, "first"), (5, 3, None),
    ]
    replayed = records[0].events
    assert [type(e) for e in replayed] == [type(e) for e in events]
    for got, sent in zip(replayed, events):
        assert got.relation == sent.relation and got.sign == sent.sign
        assert got.values == sent.values
        assert [type(v) for v in got.values] == [type(v) for v in sent.values]
    reopened.close()


def test_replay_from_offset_skips_checkpointed_batches(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        fill(wal, 4, size=3)
        assert [r.offset for r in wal.replay(6)] == [6, 9]
        assert list(wal.replay(12)) == []
        with pytest.raises(DurabilityError, match="cuts must align"):
            list(wal.replay(7))  # a cut inside a batch is a history mismatch


def test_append_must_continue_at_the_tip(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        wal.append(0, batch(0))
        with pytest.raises(DurabilityError, match="ends at 2"):
            wal.append(5, batch(5))


# -- group fsync -------------------------------------------------------------------


def test_fsync_every_groups_commits(tmp_path):
    with WriteAheadLog(tmp_path, fsync_every=3) as wal:
        assert wal.append(0, batch(0)) is False
        assert wal.append(2, batch(2)) is False
        assert wal.append(4, batch(4)) is True  # third record closes the group
        assert wal.synced_offset == wal.end_offset == 6
        wal.append(6, batch(6))
        assert wal.stats()["lag_events"] == 2
        wal.sync()
        assert wal.stats()["lag_events"] == 0
        assert wal.fsyncs == 2


def test_fsync_interval_flushes_stale_groups(tmp_path):
    with WriteAheadLog(tmp_path, fsync_every=None, fsync_interval_ms=0.0) as wal:
        # Interval 0: every append is already overdue, so each one syncs.
        assert wal.append(0, batch(0)) is True
    with WriteAheadLog(tmp_path / "lazy", fsync_every=None,
                       fsync_interval_ms=60_000) as wal:
        assert wal.append(0, batch(0)) is False  # within the interval: deferred


# -- crash tolerance ---------------------------------------------------------------


def test_torn_tail_is_truncated_on_open(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        fill(wal, 3)
        (_, path), = wal.segments()
    # The "power loss": half a record at the end of the newest segment.
    with open(path, "ab") as handle:
        handle.write(b'{"o": 6, "n": 2, "e": [')
    reopened = WriteAheadLog(tmp_path)
    assert reopened.end_offset == 6
    assert reopened.truncated_bytes > 0
    assert len(list(reopened.replay())) == 3
    # The log is appendable again right where the torn record was cut.
    reopened.append(6, batch(6))
    assert reopened.end_offset == 8
    reopened.close()


def test_corruption_in_an_older_segment_fails_loudly(tmp_path):
    with WriteAheadLog(tmp_path, segment_max_bytes=1) as wal:
        fill(wal, 3)  # 1-byte bound: every batch seals its own segment
        segments = wal.segments()
    assert len(segments) > 2
    segments[0][1].write_bytes(b"garbage\n")
    with pytest.raises(DurabilityError, match="non-tail segment"):
        WriteAheadLog(tmp_path)


# -- rotation and GC ---------------------------------------------------------------


def test_rotate_seals_segments_and_prune_drops_checkpointed_ones(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        fill(wal, 2, batch_ids=True)
        wal.rotate()
        wal.append(4, batch(4), batch_id="late")
        wal.rotate()
        wal.rotate()  # empty segment: rotating again is a no-op
        starts = [start for start, _ in wal.segments()]
        assert starts == [0, 4, 6]
        assert wal.prune(keep_from_offset=6) == 2
        assert [start for start, _ in wal.segments()] == [6]
        # Pruned segments surrender their dedup entries; the tail keeps its.
        assert wal.seen_batch("b0") is None
        assert wal.seen_batch("late") is None  # lived in the pruned 4..6 segment
        assert wal.end_offset == 6
        wal.append(6, batch(6))  # still appendable at the tip


def test_prune_never_removes_the_active_segment(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        fill(wal, 2)
        assert wal.prune(keep_from_offset=10) == 0
        assert len(wal.segments()) == 1


def test_align_to_restarts_a_stale_log(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        fill(wal, 2, batch_ids=True)
        with pytest.raises(DurabilityError, match="already ends"):
            wal.align_to(1)
        wal.align_to(4)  # no-op at the tip
        assert wal.seen_batch("b0") is not None
        wal.align_to(50)
        assert wal.end_offset == wal.synced_offset == 50
        assert wal.seen_batch("b0") is None
        assert list(wal.replay(50)) == []
        wal.append(50, batch(50))
        assert [r.offset for r in wal.replay(50)] == [50]


def test_reset_clears_everything(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        fill(wal, 3, batch_ids=True)
        wal.reset()
        assert wal.end_offset == 0
        assert wal.seen_batch("b1") is None
        assert list(wal.replay()) == []


# -- dedup index -------------------------------------------------------------------


def test_batch_index_survives_reopen(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        wal.append(0, batch(0, 3), batch_id="alpha")
        wal.append(3, batch(3, 2), batch_id="beta")
    reopened = WriteAheadLog(tmp_path)
    assert reopened.seen_batch("alpha") == (3, 3)
    assert reopened.seen_batch("beta") == (2, 5)
    assert reopened.seen_batch("gamma") is None
    reopened.close()
