"""Helpers shared by the durability tests (imported by name)."""

from types import SimpleNamespace

from repro.compiler.hoivm import compile_query
from repro.runtime.engine import IncrementalEngine
from repro.service import ViewService, engine_for_mode
from repro.workloads import workload


def typed(entries):
    """Entries with value types pinned: bit-identical, not merely ==."""
    return {key: (type(value), value) for key, value in entries.items()}


def load_statics(engine_or_service, program, statics):
    for relation, rows in statics.items():
        if relation in program.static_relations:
            engine_or_service.load_static(relation, rows)


def reference_entries(program, statics, events, version=None, name=None):
    """View contents after replaying a stream prefix through a fresh engine."""
    engine = IncrementalEngine(program)
    load_statics(engine, program, statics)
    engine.apply_many(events if version is None else events[:version])
    return engine.result_dict(name)


def make_workload_fixture(query_name, events, **stream_kwargs):
    spec = workload(query_name)
    translated = spec.query_factory()
    program = compile_query(
        translated.roots(),
        translated.schemas(),
        static_relations=translated.static_relations(),
    )
    return SimpleNamespace(
        spec=spec,
        translated=translated,
        program=program,
        statics=spec.static_tables(),
        events=list(spec.stream_factory(events=events, **stream_kwargs)),
        root=next(iter(translated.roots())),
    )


def build_durable_service(fixture, mode="incremental", *, base, statics=True, **kwargs):
    """A service with checkpoints under ``base/ckpt`` and its WAL under ``base/wal``."""
    engine_kwargs = {
        k: kwargs.pop(k) for k in ("batch_size", "partitions", "backend") if k in kwargs
    }
    service = ViewService(
        engine_for_mode(fixture.program, mode, **engine_kwargs),
        checkpoint_dir=base / "ckpt",
        wal_dir=base / "wal",
        **kwargs,
    )
    if statics:
        load_statics(service, fixture.program, fixture.statics)
    return service
