"""Property-based integration test: incremental maintenance == recomputation.

Hypothesis generates random event sequences (inserts and deletes of random
tuples over small domains) for a family of query shapes covering joins,
group-bys, self-joins and nested aggregates.  After every prefix of the
stream the engine's root views must equal direct evaluation of the query over
the base data — the fundamental correctness contract of the whole system.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.agca.builders import agg, cmp, lift, prod, rel, val, vmul
from repro.agca.evaluator import Evaluator
from repro.compiler.hoivm import compile_query
from repro.compiler.materialization import CompilerOptions
from repro.delta.events import StreamEvent
from repro.optimizer.simplify import simplify
from repro.runtime.database import Database
from repro.runtime.engine import IncrementalEngine

SCHEMAS = {"R": ("a", "b"), "S": ("b", "c")}

QUERIES = {
    "scalar_join": agg((), prod(rel("R", "a", "b"), rel("S", "b", "c"), val(vmul("a", "c")))),
    "grouped_join": agg(("b",), prod(rel("R", "a", "b"), rel("S", "b", "c"), cmp("a", "<=", "c"))),
    "self_join": agg(("b",), prod(rel("R", "a", "b"), rel("R", "a2", "b"))),
    "nested_equality": agg(
        ("a",),
        prod(
            rel("R", "a", "b"),
            lift("z", agg((), prod(rel("S", "b2", "c"), cmp("b2", "=", "b"), val("c")))),
            cmp("a", "<", "z"),
        ),
    ),
    "nested_uncorrelated": agg(
        (),
        prod(
            rel("R", "a", "b"),
            lift("z", agg((), prod(rel("S", "b2", "c"), val("c")))),
            cmp("b", "<", "z"),
        ),
    ),
}


def event_strategy():
    relation = st.sampled_from(["R", "S"])
    value = st.integers(min_value=0, max_value=3)
    return st.builds(
        lambda rel_name, v1, v2, sign: StreamEvent(rel_name, (v1, v2), sign),
        relation,
        value,
        value,
        st.sampled_from([1, -1]),
    )


def _expected(query, events):
    database = Database(SCHEMAS)
    for event in events:
        database.apply(event)
    return Evaluator(database).evaluate(simplify(query))


def _matches(left, right):
    keys = {row for row, _ in left.items()} | {row for row, _ in right.items()}
    for key in keys:
        a, b = left[key], right[key]
        if abs(a - b) > 1e-9 * max(1.0, abs(a), abs(b)):
            return False
    return True


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    query_name=st.sampled_from(sorted(QUERIES)),
    events=st.lists(event_strategy(), max_size=25),
)
def test_incremental_equals_recomputation_at_every_prefix(query_name, events):
    query = QUERIES[query_name]
    program = compile_query(query, SCHEMAS, name="Q")
    engine = IncrementalEngine(program)
    for prefix_length, event in enumerate(events, start=1):
        engine.apply(event)
        if prefix_length % 5 == 0 or prefix_length == len(events):
            assert _matches(engine.view("Q"), _expected(query, events[:prefix_length]))


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(events=st.lists(event_strategy(), max_size=20))
def test_naive_and_dbtoaster_options_agree(events):
    query = QUERIES["grouped_join"]
    smart = IncrementalEngine(compile_query(query, SCHEMAS, name="Q"))
    naive = IncrementalEngine(
        compile_query(
            query,
            SCHEMAS,
            name="Q",
            options=CompilerOptions(decomposition=False, extract_ranges=False, factorization=False),
        )
    )
    for event in events:
        smart.apply(event)
        naive.apply(event)
    assert _matches(smart.view("Q"), naive.view("Q"))
