"""Smoke tests: the shipped example scripts run end to end.

Only the quick examples are executed (the dashboards replay thousands of
events and belong to manual runs / benchmarks); the others are checked for
importability of the modules they rely on.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent.parent / "examples"


def test_quickstart_runs(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py"])
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "final view value: 80" in out
    assert "on insert into" in out  # the printed trigger program


def test_compare_strategies_runs_on_a_tiny_stream(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["compare_strategies.py", "Q6", "120"])
    runpy.run_path(str(EXAMPLES / "compare_strategies.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "refreshes/s" in out
    assert "agree on the result" in out


def test_live_dashboard_serves_over_the_wire_on_a_tiny_stream(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["live_dashboard.py", "400"])
    runpy.run_path(str(EXAMPLES / "live_dashboard.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "serving" in out
    assert "Q1 pricing summary" in out
    assert "restored and replayed: views identical" in out


@pytest.mark.parametrize(
    "script", ["algorithmic_trading.py", "tpch_dashboard.py"]
)
def test_long_running_examples_are_importable(script):
    source = (EXAMPLES / script).read_text()
    compile(source, script, "exec")  # syntax-checks without executing the replay
