"""Integration: batched & partitioned execution match per-event HO-IVM exactly.

The property behind the scale-out subsystem: for every workload family
(TPC-H, finance order-book, MDDB), replaying the same agenda — including
deletions — through ``dbtoaster-batch`` and ``dbtoaster-par`` produces view
contents identical to the per-event ``dbtoaster`` engine, for every batch
size and partition count.  Bulk-unsafe triggers (self-joins, nested
aggregates) and non-partitionable relations must be handled by the fallback
and broadcast paths without any accuracy loss.
"""

import inspect

import pytest

from repro.compiler.hoivm import compile_query
from repro.exec import BatchedEngine, PartitionedEngine
from repro.runtime.engine import IncrementalEngine
from repro.workloads import workload

#: One representative query per family feature: linear aggregate (Q1), join
#: with deletions (Q3), self-join (BSP), nested aggregate with := triggers
#: (VWAP), equi-joined self-join over positions (MDDB1).
QUERIES = ("Q1", "Q3", "BSP", "VWAP", "MDDB1")
BATCH_SIZES = (1, 7, 100)
PARTITION_COUNTS = (1, 2, 4)
EVENTS = 260


def _stream_with_deletes(spec):
    """A small agenda that includes deletions whenever the family supports them."""
    parameters = inspect.signature(spec.stream_factory).parameters
    kwargs = {"events": EVENTS}
    if "max_live_orders" in parameters:
        # Force early order deletions (TPC-H): a small live working set plus a
        # longer stream guarantees delete events inside the replayed window.
        kwargs.update(events=420, max_live_orders=25)
    return list(spec.stream_factory(**kwargs))


def _views(engine, translated, spec, events):
    for relation, rows in spec.static_tables().items():
        engine.load_static(relation, rows)
    for event in events:
        engine.apply(event)
    try:
        return {root: engine.result_dict(root) for root in translated.roots()}
    finally:
        if hasattr(engine, "close"):
            engine.close()


def _assert_views_match(expected, got, context):
    for root, want in expected.items():
        have = got[root]
        keys = set(want) | set(have)
        for key in keys:
            w, h = want.get(key, 0), have.get(key, 0)
            if isinstance(w, str) or isinstance(h, str):
                assert w == h, f"{context}/{root} at {key}: {h!r} != {w!r}"
            else:
                tolerance = 1e-9 * max(1.0, abs(w), abs(h))
                assert abs(w - h) <= tolerance, (
                    f"{context}/{root} at {key}: {h!r} != {w!r}"
                )


@pytest.fixture(scope="module")
def baselines():
    cache = {}
    for name in QUERIES:
        spec = workload(name)
        translated = spec.query_factory()
        program = compile_query(
            translated.roots(),
            translated.schemas(),
            static_relations=translated.static_relations(),
        )
        events = _stream_with_deletes(spec)
        expected = _views(IncrementalEngine(program), translated, spec, events)
        cache[name] = (spec, translated, program, events, expected)
    return cache


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("query_name", QUERIES)
def test_batched_execution_matches_per_event(baselines, query_name, batch_size):
    spec, translated, program, events, expected = baselines[query_name]
    got = _views(BatchedEngine(program, batch_size), translated, spec, events)
    _assert_views_match(expected, got, f"{query_name}/batch={batch_size}")


@pytest.mark.parametrize("partitions", PARTITION_COUNTS)
@pytest.mark.parametrize("query_name", QUERIES)
def test_partitioned_execution_matches_per_event(baselines, query_name, partitions):
    spec, translated, program, events, expected = baselines[query_name]
    got = _views(
        PartitionedEngine(program, partitions=partitions), translated, spec, events
    )
    _assert_views_match(expected, got, f"{query_name}/partitions={partitions}")


@pytest.mark.parametrize("query_name", ("Q1", "Q3"))
def test_partitioned_batched_execution_matches_per_event(baselines, query_name):
    """Batching inside partitions composes without changing results."""
    spec, translated, program, events, expected = baselines[query_name]
    got = _views(
        PartitionedEngine(program, partitions=2, batch_size=13),
        translated,
        spec,
        events,
    )
    _assert_views_match(expected, got, f"{query_name}/par+batch")


@pytest.mark.parametrize("query_name", QUERIES)
def test_compiled_batched_execution_matches_per_event(baselines, query_name):
    """Delta batching over compiled inner engines stays exact."""
    spec, translated, program, events, expected = baselines[query_name]
    got = _views(BatchedEngine(program, 13, compiled=True), translated, spec, events)
    _assert_views_match(expected, got, f"{query_name}/batch+compiled")


@pytest.mark.parametrize("query_name", ("Q1", "Q3", "VWAP"))
def test_compiled_partitioned_execution_matches_per_event(baselines, query_name):
    """Hash partitioning over compiled inner engines stays exact."""
    spec, translated, program, events, expected = baselines[query_name]
    got = _views(
        PartitionedEngine(program, partitions=2, compiled=True),
        translated,
        spec,
        events,
    )
    _assert_views_match(expected, got, f"{query_name}/par+compiled")


@pytest.mark.parametrize("query_name", ("Q1", "Q3"))
def test_compiled_process_backend_matches_per_event(baselines, query_name):
    """Worker processes recompile kernels from the pickled trigger program."""
    spec, translated, program, events, expected = baselines[query_name]
    got = _views(
        PartitionedEngine(
            program, partitions=2, backend="process", batch_size=7, compiled=True
        ),
        translated,
        spec,
        events,
    )
    _assert_views_match(expected, got, f"{query_name}/par+process+compiled")


def test_tpch_stream_used_here_contains_deletes():
    spec = workload("Q1")
    events = _stream_with_deletes(spec)
    assert any(event.sign < 0 for event in events)
