"""Checkpoint/restore with live ordered range indexes (the lazy-rebuild contract).

``restore_state`` loads plain map entries through ``clear()`` + ``set()``;
like the hash secondary indexes, any ordered range index built before the
restore must be dropped with the old contents and rebuilt lazily from the
*restored* data on the next probe — never answer from pre-restore state.
These tests checkpoint VWAP mid-stream (after the probe-backed assign has
run, so a live index exists), restore into fresh engines of every flavor —
interpreted, compiled, batched, and process-backend partitioned — replay the
tail, and require bit-identical views against an uncheckpointed reference.
"""

import pytest

from repro.codegen import CompiledEngine
from repro.compiler.hoivm import compile_query
from repro.exec import BatchedEngine, PartitionedEngine
from repro.runtime.engine import IncrementalEngine
from repro.workloads import workload


@pytest.fixture(scope="module")
def vwap():
    spec = workload("VWAP")
    translated = spec.query_factory()
    program = compile_query(
        translated.roots(),
        translated.schemas(),
        static_relations=translated.static_relations(),
    )
    events = list(spec.stream_factory(events=240))
    reference = IncrementalEngine(program)
    for event in events:
        reference.apply(event)
    expected = {
        root: reference.result_dict(root) for root in translated.roots()
    }
    return program, translated, events, expected


def _assert_views(engine, translated, expected, context):
    for root, want in expected.items():
        have = engine.result_dict(root)
        assert set(want) == set(have), f"{context}/{root}"
        for key, value in want.items():
            other = have[key]
            assert other == value and type(other) is type(value), (
                f"{context}/{root} at {key}: {other!r} != {value!r}"
            )


def _builders(program):
    return {
        "interpreted": lambda: IncrementalEngine(program),
        "compiled": lambda: CompiledEngine(program),
        "batched-compiled": lambda: BatchedEngine(program, batch_size=16, compiled=True),
        "partitioned-process": lambda: PartitionedEngine(
            program, partitions=2, backend="process", compiled=True
        ),
    }


@pytest.mark.parametrize(
    "flavor", ["interpreted", "compiled", "batched-compiled", "partitioned-process"]
)
def test_checkpoint_restore_mid_stream_with_live_range_index(vwap, flavor):
    program, translated, events, expected = vwap
    split = len(events) // 2
    build = _builders(program)[flavor]

    first = build()
    try:
        for event in events[:split]:
            first.apply(event)
        first.flush()
        state = first.checkpoint_state()
    finally:
        first.close()

    second = build()
    try:
        second.restore_state(state)
        for event in events[split:]:
            second.apply(event)
        second.flush()
        _assert_views(second, translated, expected, flavor)
    finally:
        second.close()


def test_restore_drops_prerestore_index_state(vwap):
    # Build a live index, checkpoint, keep feeding the SAME engine, then
    # restore the old state into it: the index must answer from the restored
    # contents, not the post-checkpoint ones.
    program, translated, events, _ = vwap
    split = len(events) // 2
    engine = CompiledEngine(program)
    for event in events[:split]:
        engine.apply(event)
    state = engine.checkpoint_state()
    snapshot = {root: engine.result_dict(root) for root in translated.roots()}
    for event in events[split:]:
        engine.apply(event)
    engine.restore_state(state)
    # A fresh oracle replaying the same prefix gives the expected views.
    _assert_views(engine, translated, snapshot, "rewound")
    # The probed map's ordered index was rebuilt lazily: entry counts match
    # the restored table, not the longer stream.
    table = engine.maps.table("M3")
    engine.apply(events[split])  # drive one assign so the index rebuilds
    stats = table.ordered_index_stats()
    if stats:  # index recreated on the first probe after restore
        assert stats["b2_price"]["rows"] == len(table)
