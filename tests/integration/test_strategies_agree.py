"""Integration: every maintenance strategy computes the same view contents.

The paper's comparison is only meaningful because REP / IVM / Naive /
DBToaster all produce the same answers; this test checks that property on a
representative subset of the workload, including the reference (DBX/SPY
stand-in) engine.
"""

import pytest

from repro.bench.strategies import build_engine
from repro.workloads import workload

QUERIES = ["Q3", "Q6", "Q18a", "VWAP", "AXF", "Q22a"]
STRATEGIES = ["dbtoaster", "naive", "ivm", "rep"]


def _final_views(strategy, translated, events, static):
    engine = build_engine(strategy, translated)
    for relation, rows in static.items():
        engine.load_static(relation, rows)
    for event in events:
        engine.apply(event)
    return {name: engine.view(name) for name in translated.roots()}


def _close(a, b):
    if isinstance(a, str) or isinstance(b, str):
        return a == b
    return abs(a - b) <= 1e-6 * max(1.0, abs(a), abs(b))


@pytest.mark.parametrize("query_name", QUERIES)
def test_all_compiled_strategies_agree(query_name):
    spec = workload(query_name)
    translated = spec.query_factory()
    events = spec.stream_factory(events=200).events()
    static = spec.static_tables()

    baseline = _final_views("dbtoaster", translated, events, static)
    for strategy in STRATEGIES[1:]:
        other = _final_views(strategy, translated, events, static)
        for root, expected in baseline.items():
            got = other[root]
            keys = {row for row, _ in expected.items()} | {row for row, _ in got.items()}
            for key in keys:
                assert _close(expected[key], got[key]), (
                    f"{query_name}/{root}: {strategy} disagrees with dbtoaster at {dict(key)}"
                )


def test_reference_engine_agrees_on_a_small_join_query():
    spec = workload("Q3")
    translated = spec.query_factory()
    events = spec.stream_factory(events=120).events()
    static = spec.static_tables()

    incremental = _final_views("dbtoaster", translated, events, static)
    reference = build_engine("dbx-rep", translated)
    for relation, rows in static.items():
        reference.load_static(relation, rows)
    for event in events:
        reference.apply(event)

    for root, expected in incremental.items():
        got = reference.view(root)
        keys = {row for row, _ in expected.items()} | {row for row, _ in got.items()}
        for key in keys:
            assert _close(expected[key], got[key])
