"""Integration: every workload query, maintained incrementally, matches recomputation.

For each of the 22 workload queries, replay a freshly generated update stream
through the full pipeline (SQL -> AGCA -> HO-IVM -> engine) and compare every
materialized root against direct evaluation of the query over the final
database state.
"""

import pytest

from repro.agca.evaluator import Evaluator
from repro.compiler.hoivm import compile_query
from repro.optimizer.simplify import simplify
from repro.runtime.database import Database
from repro.runtime.engine import IncrementalEngine
from repro.workloads import all_workloads, workload

#: Smaller streams for queries whose oracle evaluation is expensive (quadratic).
_EVENT_BUDGET = {"MST": 120, "PSP": 150, "MDDB2": 150, "Q19": 200}
_DEFAULT_EVENTS = 300


def _approximately_equal(left, right):
    if isinstance(left, str) or isinstance(right, str):
        return left == right
    return abs(left - right) <= 1e-6 * max(1.0, abs(left), abs(right))


def _oracle_views(translated, events, static):
    database = Database(translated.schemas())
    for relation, rows in static.items():
        database.load(relation, rows)
    for event in events:
        database.apply(event)
    evaluator = Evaluator(database)
    return {name: evaluator.evaluate(simplify(expr)) for name, expr in translated.roots().items()}


@pytest.mark.parametrize("query_name", sorted(all_workloads()))
def test_incremental_views_match_recomputation(query_name):
    spec = workload(query_name)
    translated = spec.query_factory()
    program = compile_query(
        translated.roots(),
        translated.schemas(),
        static_relations=translated.static_relations(),
    )
    engine = IncrementalEngine(program)

    events = spec.stream_factory(events=_EVENT_BUDGET.get(query_name, _DEFAULT_EVENTS))
    static = spec.static_tables()
    for relation, rows in static.items():
        engine.load_static(relation, rows)
    for event in events:
        engine.apply(event)

    oracle = _oracle_views(translated, events.events(), static)
    for root in translated.roots():
        got = engine.view(root)
        want = oracle[root]
        keys = {row for row, _ in got.items()} | {row for row, _ in want.items()}
        for key in keys:
            assert _approximately_equal(got[key], want[key]), (
                f"{query_name}/{root} disagrees at {dict(key)}: "
                f"incremental={got[key]!r} recomputed={want[key]!r}"
            )


@pytest.mark.parametrize("query_name", ["Q3", "Q18a", "VWAP", "AXF"])
def test_compiled_programs_have_no_input_variable_maps(query_name):
    spec = workload(query_name)
    translated = spec.query_factory()
    program = compile_query(
        translated.roots(),
        translated.schemas(),
        static_relations=translated.static_relations(),
    )
    from repro.agca.schema import input_variables

    for declaration in program.maps.values():
        assert not input_variables(declaration.definition), declaration.pretty()
