"""Tests for the molecular-dynamics workload."""

from repro.workloads.mddb import (
    MDDB_QUERIES,
    MDDBGenerator,
    mddb_catalog,
    mddb_query,
    mddb_static_tables,
    mddb_stream,
)


def test_catalog_declares_positions_stream_and_static_metadata():
    catalog = mddb_catalog()
    assert set(catalog.stream_relations()) == {"AtomPositions"}
    assert set(catalog.static_relations()) == {"AtomMeta", "Dihedrals"}


def test_static_tables_contain_query_relevant_residues():
    tables = mddb_static_tables(atoms=40, seed=1)
    residues = {(row[1], row[2]) for row in tables["AtomMeta"]}
    assert ("LYS", "NZ") in residues or ("TIP3", "OH2") in residues
    assert all(len(row) == 4 for row in tables["Dihedrals"])


def test_stream_is_deterministic_and_only_insertions():
    first = list(MDDBGenerator(seed=2).events(200))
    second = list(MDDBGenerator(seed=2).events(200))
    assert first == second
    assert all(event.sign > 0 and event.relation == "AtomPositions" for event in first)


def test_positions_stay_inside_the_box():
    generator = MDDBGenerator(atoms=10, seed=3, box_size=20.0)
    for event in generator.events(300):
        _, _, _, x, y, z = event.values
        assert 0.0 <= x <= 20.0 and 0.0 <= y <= 20.0 and 0.0 <= z <= 20.0


def test_stream_factory_honours_event_count():
    assert len(mddb_stream(events=123)) == 123


def test_both_queries_parse_and_translate():
    for name in MDDB_QUERIES:
        translated = mddb_query(name)
        assert translated.roots(), name


def test_registry_contains_mddb_queries():
    from repro.workloads import all_workloads

    assert {n for n, s in all_workloads().items() if s.family == "mddb"} == set(MDDB_QUERIES)
