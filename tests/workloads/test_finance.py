"""Tests for the financial workload (order-book generator and queries)."""

import pytest

from repro.streams.stats import summarize_stream
from repro.workloads.finance import (
    FINANCE_QUERIES,
    OrderBookGenerator,
    finance_catalog,
    finance_query,
)
from repro.workloads.finance.orderbook import order_book_stream
from repro.errors import WorkloadError


def test_catalog_has_bids_and_asks_streams():
    catalog = finance_catalog()
    assert set(catalog.schemas()) == {"Bids", "Asks"}
    assert catalog.static_relations() == ()
    assert catalog.table("Bids").columns == ("t", "id", "broker_id", "volume", "price")


def test_generator_is_deterministic_per_seed():
    first = list(OrderBookGenerator(seed=3).events(100))
    second = list(OrderBookGenerator(seed=3).events(100))
    other = list(OrderBookGenerator(seed=4).events(100))
    assert first == second
    assert first != other


def test_generator_produces_requested_count_and_mix():
    agenda = order_book_stream(events=400, seed=1)
    assert len(agenda) == 400
    stats = summarize_stream(agenda)
    assert stats.deletes > 0
    assert set(stats.per_relation) <= {"Bids", "Asks"}


def test_deletions_only_remove_live_orders():
    events = list(OrderBookGenerator(seed=5, delete_fraction=0.4).events(300))
    live = set()
    for event in events:
        key = (event.relation, event.values)
        if event.sign > 0:
            live.add(key)
        else:
            assert key in live
            live.remove(key)


def test_invalid_delete_fraction_rejected():
    with pytest.raises(WorkloadError):
        OrderBookGenerator(delete_fraction=1.5)


def test_every_finance_query_parses_and_translates():
    for name in FINANCE_QUERIES:
        translated = finance_query(name)
        assert translated.roots(), name
        assert translated.name == name


def test_registry_exposes_all_six_queries():
    from repro.workloads import all_workloads

    names = {name for name, spec in all_workloads().items() if spec.family == "finance"}
    assert names == {"AXF", "BSP", "BSV", "MST", "PSP", "VWAP"}
