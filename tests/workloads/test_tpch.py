"""Tests for the TPC-H-like generator, stream synthesizer and query library."""

from collections import defaultdict

import pytest

from repro.streams.stats import summarize_stream
from repro.workloads.tpch import (
    TPCH_QUERIES,
    TPCHGenerator,
    synthesize_tpch_stream,
    tpch_catalog,
    tpch_query,
    tpch_stream,
)
from repro.workloads.tpch.schema import TPCH_SCHEMA, TPCH_STATIC
from repro.workloads.tpch.stream import static_tables


def test_catalog_matches_schema_definition():
    catalog = tpch_catalog()
    assert set(catalog.schemas()) == set(TPCH_SCHEMA)
    assert set(catalog.static_relations()) == set(TPCH_STATIC)


def test_generator_row_counts_scale():
    small = TPCHGenerator(scale=0.5, seed=1).generate()
    large = TPCHGenerator(scale=1.0, seed=1).generate()
    assert len(large.orders) > len(small.orders)
    assert len(large.customers) > len(small.customers)
    assert len(small.nations) == 25 and len(small.regions) == 5


def test_generator_respects_foreign_keys():
    data = TPCHGenerator(scale=0.3, seed=2).generate()
    custkeys = {row[0] for row in data.customers}
    orderkeys = {row[0] for row in data.orders}
    partsupp_pairs = {(row[0], row[1]) for row in data.partsupps}
    assert all(order[1] in custkeys for order in data.orders)
    assert all(item[0] in orderkeys for item in data.lineitems)
    assert all((item[1], item[2]) in partsupp_pairs for item in data.lineitems)


def test_generator_is_deterministic():
    a = TPCHGenerator(scale=0.2, seed=9).generate()
    b = TPCHGenerator(scale=0.2, seed=9).generate()
    assert a.orders == b.orders and a.lineitems == b.lineitems


def test_stream_preserves_insert_before_reference():
    data = TPCHGenerator(scale=0.2, seed=3).generate()
    agenda = synthesize_tpch_stream(data, seed=4, max_live_orders=20)
    seen = defaultdict(set)
    live_orders = set()
    for event in agenda:
        key = event.values[0]
        if event.relation == "Orders":
            if event.sign > 0:
                assert event.values[1] in seen["Customer"]
                live_orders.add(key)
            else:
                live_orders.discard(key)
        elif event.relation == "Lineitem" and event.sign > 0:
            assert key in live_orders or key in seen["Orders"]
        if event.sign > 0:
            seen[event.relation].add(key)


def test_stream_bounds_live_orders():
    data = TPCHGenerator(scale=0.5, seed=3).generate()
    agenda = synthesize_tpch_stream(data, seed=4, max_live_orders=30)
    live = 0
    peak = 0
    for event in agenda:
        if event.relation == "Orders":
            live += 1 if event.sign > 0 else -1
            peak = max(peak, live)
    assert peak <= 31
    stats = summarize_stream(agenda)
    assert stats.deletes > 0


def test_stream_respects_max_events():
    agenda = tpch_stream(events=500, scale=0.5, seed=5)
    assert len(agenda) <= 500


def test_static_tables_exports_nation_and_region():
    tables = static_tables(scale=0.2, seed=5)
    assert set(tables) == {"Nation", "Region"}
    assert len(tables["Nation"]) == 25


def test_every_tpch_query_parses_and_translates():
    for name in TPCH_QUERIES:
        translated = tpch_query(name)
        assert translated.roots(), name


def test_q1_exposes_all_ten_output_columns():
    translated = tpch_query("Q1")
    names = [c.name for c in translated.outputs]
    assert "sum_qty" in names and "avg_price" in names and "count_order" in names
    assert len(names) == 10  # 2 group columns + 8 value columns


def test_registry_contains_the_documented_queries():
    from repro.workloads import all_workloads

    tpch_names = {n for n, s in all_workloads().items() if s.family == "tpch"}
    assert tpch_names == set(TPCH_QUERIES)
