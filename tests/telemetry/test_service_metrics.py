"""The server ``metrics`` op, subscription queue stats, and the CLI."""

import subprocess
import sys
import time

import pytest

from repro.service import ServiceClient, ViewService, engine_for_mode, start_in_thread
from repro.service.subscriptions import SubscriptionRegistry
from repro.telemetry import Telemetry


def _serve(q1, telemetry=None, mode="compiled", **kwargs):
    engine = engine_for_mode(q1.program, mode, telemetry=telemetry, **kwargs)
    service = ViewService(engine, telemetry=telemetry)
    q1.load_statics(service)
    return service, start_in_thread(service)


class TestMetricsOp:
    def test_disabled_telemetry_still_answers_with_statistics(self, q1):
        service, handle = _serve(q1, telemetry=None)
        try:
            with ServiceClient(*handle.address) as client:
                client.ingest(q1.events[:20])
                response = client.metrics()
            assert response["ok"]
            assert response["enabled"] is False
            assert response["prometheus"] == ""
            assert response["metrics"] == {}
            assert response["statistics"]["engine"]["events_processed"] == 20
        finally:
            handle.stop()
            service.close()

    def test_enabled_telemetry_exposes_every_layer(self, q1):
        telemetry = Telemetry(enabled=True)
        service, handle = _serve(q1, telemetry=telemetry)
        try:
            with ServiceClient(*handle.address) as client:
                client.ingest(q1.events)
                client.query(q1.root)
                response = client.metrics()
            assert response["enabled"] is True
            text = response["prometheus"]
            assert "repro_engine_trigger_latency_seconds_bucket" in text
            assert "repro_engine_events_total" in text
            assert "repro_service_staleness_seconds" in text
            assert "repro_service_query_latency_seconds" in text
            families = response["metrics"]
            events_total = sum(
                series["value"]
                for series in families["repro_engine_events_total"]["series"]
            )
            assert events_total == len(q1.events)
        finally:
            handle.stop()
            service.close()

    def test_subscription_depth_is_gauged(self, q1):
        telemetry = Telemetry(enabled=True)
        service, handle = _serve(q1, telemetry=telemetry, mode="incremental")
        try:
            subscription = service.subscribe(q1.root)
            service.ingest(q1.events[:50])
            with ServiceClient(*handle.address) as client:
                families = client.metrics()["metrics"]
            depth = families.get("repro_service_subscription_depth")
            assert depth is not None
            (series,) = depth["series"]
            assert series["labels"] == {"view": q1.root}
            assert series["value"] == len(subscription)  # undrained backlog
            watermark = families["repro_service_subscription_high_watermark"]
            assert watermark["series"][0]["value"] >= series["value"] > 0
        finally:
            handle.stop()
            service.close()


class TestQueueStats:
    def _registry_with_publishes(self, count, maxlen=8):
        registry = SubscriptionRegistry()
        subscription = registry.subscribe("v", maxlen=maxlen)
        registry.publish("v", 1, [((i,), None, i) for i in range(count)])
        return registry, subscription

    def test_high_watermark_tracks_peak_depth_not_current(self):
        _, subscription = self._registry_with_publishes(5)
        subscription.poll()
        stats = subscription.stats()
        assert stats.pending == 0
        assert stats.high_watermark == 5
        assert stats.delivered == 5

    def test_last_delivery_age_resets_on_poll(self):
        _, subscription = self._registry_with_publishes(3)
        time.sleep(0.02)
        assert subscription.stats().last_delivery_age_seconds >= 0.02
        subscription.poll()
        assert subscription.stats().last_delivery_age_seconds < 0.02

    def test_overflow_closes_once_and_counts_once(self):
        registry, subscription = self._registry_with_publishes(20, maxlen=8)
        assert subscription.overflowed
        assert subscription.closed
        assert registry.overflows == 1
        # Further publishes to the dead subscription don't recount.
        registry.publish("v", 2, [((99,), None, 99)])
        assert registry.overflows == 1
        stats = subscription.stats()
        assert stats.high_watermark == 8
        assert stats.published == 8  # nothing enqueued past the bound


class TestCli:
    @pytest.fixture()
    def served(self, q1):
        telemetry = Telemetry(enabled=True)
        service, handle = _serve(q1, telemetry=telemetry)
        with ServiceClient(*handle.address) as client:
            client.ingest(q1.events)
            client.query(q1.root)
        yield handle.address
        handle.stop()
        service.close()

    def _cli(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.telemetry", *argv],
            capture_output=True,
            text=True,
            timeout=30,
        )

    def test_summary_reports_events_and_triggers(self, served, q1):
        host, port = served
        result = self._cli("summary", "--host", host, "--port", str(port))
        assert result.returncode == 0, result.stderr
        assert f"{len(q1.events)}" in result.stdout
        assert "p50" in result.stdout and "p99" in result.stdout
        assert "on_insert_" in result.stdout

    def test_top_triggers_limits_rows(self, served):
        host, port = served
        result = self._cli("top-triggers", "-n", "2", "--host", host, "--port", str(port))
        assert result.returncode == 0, result.stderr
        rows = [line for line in result.stdout.splitlines() if "on_" in line]
        assert 0 < len(rows) <= 2

    def test_dump_prom_emits_exposition_format(self, served):
        host, port = served
        result = self._cli("dump", "--prom", "--host", host, "--port", str(port))
        assert result.returncode == 0, result.stderr
        assert "# TYPE repro_engine_events_total counter" in result.stdout

    def test_connection_refused_is_a_clean_failure(self):
        result = self._cli("summary", "--port", "1")  # nothing listens there
        assert result.returncode == 1
        assert "no server" in result.stderr.lower()
