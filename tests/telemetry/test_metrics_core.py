"""Metrics core: instruments, quantiles, registry, exposition formats."""

import gc
import sys

import pytest

from repro.telemetry import (
    COUNT_BOUNDS,
    LATENCY_BOUNDS,
    NULL_REGISTRY,
    Counter,
    Histogram,
    MetricRegistry,
    Telemetry,
    TELEMETRY_ENV,
)
from repro.telemetry import core as telemetry_core


class TestHistogram:
    def test_observe_counts_and_sum(self):
        hist = Histogram("h")
        for value in (1e-6, 2e-6, 5e-5, 1e-3):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(1e-6 + 2e-6 + 5e-5 + 1e-3)
        assert sum(hist.counts) == 4

    def test_buckets_are_monotone_under_any_stream(self):
        hist = Histogram("h")
        for i in range(1000):
            hist.observe((i % 97 + 1) * 1e-7)
        cumulative = 0
        previous = 0
        for bucket in hist.counts:
            cumulative += bucket
            assert cumulative >= previous
            previous = cumulative
        assert cumulative == hist.count

    def test_quantiles_are_ordered_and_bracket_the_data(self):
        hist = Histogram("h")
        for value in [1e-5] * 50 + [1e-4] * 40 + [1e-2] * 10:
            hist.observe(value)
        p50, p90, p99 = (hist.quantile(q) for q in (0.5, 0.9, 0.99))
        assert p50 <= p90 <= p99
        # Log-scaled buckets are ~12% wide: the quantiles must land within
        # one bucket of the underlying values, not just in order.
        assert p50 == pytest.approx(1e-5, rel=0.13)
        assert p90 == pytest.approx(1e-4, rel=0.13)
        assert p99 == pytest.approx(1e-2, rel=0.13)

    def test_overflow_clamps_to_top_bound(self):
        hist = Histogram("h")
        hist.observe(1e9)  # way past the largest bound
        assert hist.quantile(0.5) == LATENCY_BOUNDS[-1]

    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram("h").quantile(0.99) == 0.0

    def test_count_bounds_fit_batch_sizes(self):
        hist = Histogram("h", bounds=COUNT_BOUNDS)
        for size in (1, 64, 256, 100_000):
            hist.observe(size)
        assert hist.counts[-1] == 0  # nothing in the overflow bucket
        assert hist.quantile(0.5) == pytest.approx(64, rel=0.2)


class TestRegistry:
    def test_same_name_and_labels_dedups(self):
        registry = MetricRegistry()
        a = registry.counter("c", {"x": "1"})
        b = registry.counter("c", {"x": "1"})
        c = registry.counter("c", {"x": "2"})
        assert a is b
        assert a is not c

    def test_register_aliases_one_instrument_under_two_names(self):
        registry = MetricRegistry()
        hist = registry.histogram("engine_latency")
        registry.register("kernel_latency", {"trigger": "t"}, hist, kind="histogram")
        hist.observe(1e-4)
        snapshot = registry.snapshot()
        assert snapshot["engine_latency"]["series"][0]["count"] == 1
        assert snapshot["kernel_latency"]["series"][0]["count"] == 1

    def test_collectors_run_at_scrape_time(self):
        registry = MetricRegistry()
        state = {"n": 0}

        def collect(reg):
            reg.counter("pulled_total").value = state["n"]

        registry.add_collector(collect)
        state["n"] = 41
        assert registry.snapshot()["pulled_total"]["series"][0]["value"] == 41
        state["n"] = 42
        assert registry.snapshot()["pulled_total"]["series"][0]["value"] == 42

    def test_histogram_family_merges_series(self):
        registry = MetricRegistry()
        registry.histogram("h", {"k": "a"}).observe(1e-5)
        registry.histogram("h", {"k": "b"}).observe(1e-5)
        family = registry.histogram_family("h")
        assert family["count"] == 2
        assert family["p50"] == pytest.approx(1e-5, rel=0.13)
        assert registry.histogram_family("missing") is None

    def test_prometheus_rendering(self):
        registry = MetricRegistry()
        registry.counter("events_total", {"op": "insert"}, help="Events").value = 7
        registry.gauge("depth").set(3)
        registry.histogram("latency_seconds").observe(1e-4)
        text = registry.render_prometheus()
        assert '# TYPE events_total counter' in text
        assert 'events_total{op="insert"} 7' in text
        assert "depth 3" in text
        assert "latency_seconds_count 1" in text
        assert "le=" in text and '+Inf' in text

    def test_prometheus_histogram_buckets_are_cumulative(self):
        registry = MetricRegistry()
        hist = registry.histogram("h")
        hist.observe(1e-6)
        hist.observe(1e-3)
        lines = [
            line for line in registry.render_prometheus().splitlines()
            if line.startswith("h_bucket")
        ]
        values = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert values == sorted(values)
        assert values[-1] == 2  # +Inf bucket sees everything


class TestTelemetry:
    def test_disabled_shares_null_singletons(self):
        telemetry = Telemetry(enabled=False)
        assert telemetry.registry is NULL_REGISTRY
        assert telemetry.registry.counter("a") is telemetry.registry.counter("b")

    def test_null_instruments_allocate_nothing_per_call(self):
        telemetry = Telemetry(enabled=False)
        counter = telemetry.registry.counter("c")
        hist = telemetry.registry.histogram("h")
        gauge = telemetry.registry.gauge("g")
        span = telemetry.tracer.span("s")
        # Shared no-op singletons: 40k calls must not allocate.  Real
        # per-call allocation shows up as thousands of blocks on every
        # attempt; stray threads elsewhere in the test process can allocate
        # concurrently, so take the best of a few attempts (small slack for
        # interpreter-internal caches).
        deltas = []
        for _ in range(5):
            gc.collect()
            before = sys.getallocatedblocks()
            for _ in range(10_000):
                counter.inc()
                hist.observe(1e-4)
                gauge.set(1)
                with span:
                    pass
            deltas.append(sys.getallocatedblocks() - before)
            if deltas[-1] < 10:
                break
        assert min(deltas) < 10, deltas

    def test_env_variable_enables_global_telemetry(self, monkeypatch):
        from repro.telemetry import current, reset

        monkeypatch.setenv(TELEMETRY_ENV, "1")
        reset()
        try:
            assert current().enabled
            monkeypatch.setenv(TELEMETRY_ENV, "0")
            reset()
            assert not current().enabled
        finally:
            reset()

    def test_sample_stride_is_clamped(self):
        assert Telemetry(enabled=True, sample_stride=0).sample_stride == 1
        assert Telemetry(enabled=True, sample_stride=16).sample_stride == 16


def test_counter_inc_defaults_to_one():
    counter = Counter("c")
    counter.inc()
    counter.inc(5)
    assert counter.value == 6


def test_bucket_quantile_interpolates_geometrically():
    bounds = LATENCY_BOUNDS
    counts = [0] * (len(bounds) + 1)
    counts[10] = 100  # all mass in one bucket
    value = telemetry_core._bucket_quantile(bounds, counts, 100, 0.5)
    lo, hi = bounds[9], bounds[10]
    assert lo <= value <= hi
