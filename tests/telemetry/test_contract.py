"""Telemetry contract across every execution mode.

The invariant under test: **events in == events accounted, nothing counted
twice**.  Each mode accounts differently (per-event histograms, batched bulk
counters, partitioned routing counters), but the scraped
``repro_engine_events_total`` family must always sum to the number of events
applied.  Alongside: histogram monotonicity, metric continuity across
checkpoint/restore, and the disabled-mode zero-cost guarantee.
"""

import pytest

from repro.runtime.engine import IncrementalEngine
from repro.service.core import ViewService, engine_for_mode
from repro.telemetry import Telemetry

MODES = [
    pytest.param("incremental", {}, id="incremental"),
    pytest.param("compiled", {}, id="compiled-fused"),
    pytest.param("batched", {"batch_size": 50}, id="batched"),
    pytest.param("partitioned", {"partitions": 2}, id="partitioned-sequential"),
    pytest.param(
        "partitioned",
        {"partitions": 2, "backend": "process"},
        id="partitioned-process",
    ),
]


def _events_total(registry):
    snapshot = registry.snapshot()
    family = snapshot.get("repro_engine_events_total", {"series": []})
    return sum(entry["value"] for entry in family["series"])


def _replay(q1, mode, config, telemetry):
    engine = engine_for_mode(q1.program, mode, telemetry=telemetry, **config)
    try:
        q1.load_statics(engine)
        for event in q1.events:
            engine.apply(event)
        engine.flush()
        return engine.result_dict(q1.root), _events_total(telemetry.registry)
    finally:
        if hasattr(engine, "close"):
            engine.close()


@pytest.mark.parametrize("mode,config", MODES)
def test_events_in_equals_events_accounted(q1, mode, config):
    telemetry = Telemetry(enabled=True)
    reference = IncrementalEngine(q1.program)
    q1.load_statics(reference)
    reference.apply_many(q1.events)

    entries, accounted = _replay(q1, mode, config, telemetry)
    assert accounted == len(q1.events)
    assert entries == reference.result_dict(q1.root)


@pytest.mark.parametrize("mode,config", MODES[:3])
def test_latency_histograms_are_monotone_and_consistent(q1, mode, config):
    telemetry = Telemetry(enabled=True)
    _replay(q1, mode, config, telemetry)
    snapshot = telemetry.registry.snapshot()
    family = snapshot.get("repro_engine_trigger_latency_seconds")
    assert family is not None
    for series in family["series"]:
        if not series["count"]:
            continue
        assert series["sum"] > 0.0
        assert 0.0 < series["p50"] <= series["p90"] <= series["p99"]
    merged = telemetry.registry.histogram_family(
        "repro_engine_trigger_latency_seconds"
    )
    assert merged["count"] == sum(s["count"] for s in family["series"])


def test_batched_mode_counts_bulk_and_fallback_exactly_once(q1):
    """Bulk-folded groups and per-event fallback replays partition the stream."""
    telemetry = Telemetry(enabled=True)
    engine = engine_for_mode(q1.program, "batched", batch_size=50, telemetry=telemetry)
    q1.load_statics(engine)
    for event in q1.events:
        engine.apply(event)
    engine.flush()
    stats = engine.statistics()["batching"]
    sampled = telemetry.registry.histogram_family(
        "repro_engine_trigger_latency_seconds"
    )
    per_event_observed = sampled["count"] if sampled else 0
    assert per_event_observed + stats["bulk_events"] == len(q1.events)


def test_sample_stride_scales_event_totals(q1):
    telemetry = Telemetry(enabled=True, sample_stride=4)
    _, accounted = _replay(q1, "compiled", {}, telemetry)
    # Stride-4 sampling observes one event in four; totals are scaled back
    # up at scrape, so the family sums to the stream length up to stride
    # granularity per series.
    series = telemetry.registry.snapshot()["repro_engine_events_total"]["series"]
    assert accounted == pytest.approx(len(q1.events), abs=4 * len(series))
    sampled = telemetry.registry.histogram_family(
        "repro_engine_trigger_latency_seconds"
    )
    assert 0 < sampled["count"] <= len(q1.events) // 4 + len(series)


def test_burst_profiling_disarms_after_burst(q1):
    telemetry = Telemetry(enabled=True, profile_interval=3600.0, profile_burst=16)
    engine = engine_for_mode(q1.program, "compiled", telemetry=telemetry)
    q1.load_statics(engine)
    for event in q1.events:
        engine.apply(event)
    # The interval is an hour: exactly the initial burst gets sampled, after
    # which the hot path runs with observers disarmed (None).
    sampled = telemetry.registry.histogram_family(
        "repro_engine_trigger_latency_seconds"
    )
    assert sampled["count"] == 16
    assert engine._trigger_observers is None
    assert engine.events_processed == len(q1.events)


def test_disabled_mode_keeps_hot_path_bare(q1):
    telemetry = Telemetry(enabled=False)
    engine = engine_for_mode(q1.program, "compiled", telemetry=telemetry)
    assert engine._trigger_observers is None
    q1.load_statics(engine)
    for event in q1.events[:20]:
        engine.apply(event)
    assert engine.events_processed == 20
    # Nothing registered anywhere: the null registry stays empty.
    assert telemetry.registry.snapshot() == {}


def test_checkpoint_restore_keeps_metrics_monotonic(q1, tmp_path):
    telemetry = Telemetry(enabled=True)
    engine = engine_for_mode(q1.program, "compiled", telemetry=telemetry)
    service = ViewService(engine, checkpoint_dir=tmp_path, telemetry=telemetry)
    q1.load_statics(service)
    half = len(q1.events) // 2
    service.ingest(q1.events[:half])
    service.checkpoint()
    service.ingest(q1.events[half:])
    entries_full = dict(service.query(q1.root).entries)
    before = _events_total(telemetry.registry)

    restored = service.restore()
    assert restored == half
    # Metrics are process-lifetime: restoring state must not rewind them.
    assert _events_total(telemetry.registry) >= before
    service.ingest(q1.events[half:])
    assert dict(service.query(q1.root).entries) == entries_full
    # Replaying the tail again advances the accounting deterministically.
    assert _events_total(telemetry.registry) == before + (len(q1.events) - half)
    service.close()
