"""Shared fixtures for the telemetry tests.

The contract tests replay the same Q1 stream (inserts and deletions) through
every execution mode with one enabled registry each and assert the accounting
invariants; the fixture is package-scoped because compiling the workload is
the expensive part.
"""

import pytest

from repro.compiler.hoivm import compile_query
from repro.workloads import workload


class _Fixture:
    def __init__(self, query_name, events, **stream_kwargs):
        self.spec = workload(query_name)
        self.translated = self.spec.query_factory()
        self.program = compile_query(
            self.translated.roots(),
            self.translated.schemas(),
            static_relations=self.translated.static_relations(),
        )
        self.statics = self.spec.static_tables()
        self.events = list(self.spec.stream_factory(events=events, **stream_kwargs))
        self.root = next(iter(self.translated.roots()))

    def load_statics(self, engine_or_service):
        for relation, rows in self.statics.items():
            if relation in self.program.static_relations:
                engine_or_service.load_static(relation, rows)


@pytest.fixture(scope="package")
def q1():
    fixture = _Fixture("Q1", events=300, max_live_orders=20)
    assert any(event.sign < 0 for event in fixture.events)
    return fixture
