"""The unified statistics schema against every live ``statistics()`` shape.

These tests build real engines rather than hand-written dicts, so they break
if any layer's raw shape drifts away from what :mod:`repro.telemetry.schema`
normalizes — that drift is exactly the bug the unifier exists to prevent.
"""

import pytest

from repro.service.core import ViewService, engine_for_mode
from repro.telemetry import STATS_SCHEMA, unify_statistics
from repro.telemetry.schema import flatten_statistics


def _stats_for(q1, mode, **config):
    engine = engine_for_mode(q1.program, mode, **config)
    try:
        q1.load_statics(engine)
        for event in q1.events[:50]:
            engine.apply(event)
        engine.flush()
        return engine.statistics()
    finally:
        if hasattr(engine, "close"):
            engine.close()


@pytest.mark.parametrize(
    "mode,config,expected",
    [
        ("incremental", {}, "incremental"),
        ("compiled", {}, "compiled"),
        ("batched", {"batch_size": 10}, "batched"),
        ("partitioned", {"partitions": 2}, "partitioned"),
    ],
)
def test_mode_detection_from_live_engines(q1, mode, config, expected):
    unified = unify_statistics(_stats_for(q1, mode, **config))
    assert unified["schema"] == STATS_SCHEMA
    assert unified["mode"] == expected
    assert unified["engine"]["events_processed"] == 50
    assert unified["engine"]["memory_bytes"] > 0


def test_unify_preserves_raw_and_does_not_mutate(q1):
    raw = _stats_for(q1, "compiled")
    snapshot = dict(raw)
    unified = unify_statistics(raw)
    assert raw == snapshot
    assert unified["raw"] == raw
    assert unified["codegen"] is raw["codegen"]


def test_partitioned_nests_unified_partitions(q1):
    unified = unify_statistics(_stats_for(q1, "partitioned", partitions=2))
    partitioning = unified["partitioning"]
    assert partitioning["spec"]
    assert len(partitioning["partitions"]) == 2
    for partition in partitioning["partitions"]:
        assert partition["schema"] == STATS_SCHEMA
        assert partition["mode"] in ("incremental", "compiled")
    routed = sum(partitioning["events_routed"])
    assert routed + partitioning["events_broadcast"] * 2 >= 50


def test_service_wrapper_layers_on_top_of_engine(q1):
    engine = engine_for_mode(q1.program, "compiled")
    service = ViewService(engine)
    q1.load_statics(service)
    service.ingest(q1.events[:50])
    unified = unify_statistics(service.statistics())
    assert unified["mode"] == "compiled"
    assert unified["engine"]["events_processed"] == 50
    assert unified["service"]["version"] >= 1  # state version advances per event
    assert unified["service"]["views"]
    assert "engine" in unified["raw"]
    service.close()


def test_flatten_produces_stable_scalar_keys(q1):
    flat = flatten_statistics(_stats_for(q1, "batched", batch_size=10))
    assert flat["schema"] == STATS_SCHEMA
    assert flat["mode"] == "batched"
    assert flat["engine.events_processed"] == 50
    assert any(key.startswith("batching.") for key in flat)
    assert all(not isinstance(value, (dict, list)) for value in flat.values())


def test_flatten_accepts_already_unified_input(q1):
    raw = _stats_for(q1, "compiled")
    assert flatten_statistics(unify_statistics(raw)) == flatten_statistics(raw)
    flat = flatten_statistics(raw)
    assert "codegen.fused_kernels" in flat
