"""Tracing: span records, nesting, deterministic sampling, sink rotation."""

import json
import threading

import pytest

from repro.telemetry import NULL_SPAN, JsonlTraceSink, NullTracer, Tracer


def _read_records(path):
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


@pytest.fixture
def sink_path(tmp_path):
    return str(tmp_path / "trace.jsonl")


class TestSpans:
    def test_span_records_name_duration_and_ids(self, sink_path):
        tracer = Tracer(JsonlTraceSink(sink_path))
        with tracer.span("service.ingest", {"events": 3}):
            pass
        tracer.close()
        records = _read_records(sink_path)
        assert len(records) == 1
        record = records[0]
        assert record["name"] == "service.ingest"
        assert record["attrs"] == {"events": 3}
        assert record["duration_seconds"] >= 0.0
        assert record["parent_id"] is None
        assert record["span_id"] > 0

    def test_nested_spans_carry_parent_ids(self, sink_path):
        tracer = Tracer(JsonlTraceSink(sink_path))
        with tracer.span("service.ingest") as root:
            with tracer.span("service.apply") as child:
                with tracer.span("engine.apply"):
                    pass
        tracer.close()
        by_name = {record["name"]: record for record in _read_records(sink_path)}
        assert by_name["service.ingest"]["parent_id"] is None
        assert by_name["service.apply"]["parent_id"] == root.span_id
        assert by_name["engine.apply"]["parent_id"] == child.span_id

    def test_exception_marks_span_as_error(self, sink_path):
        tracer = Tracer(JsonlTraceSink(sink_path))
        with pytest.raises(RuntimeError):
            with tracer.span("service.query"):
                raise RuntimeError("boom")
        tracer.close()
        (record,) = _read_records(sink_path)
        assert record["error"] is True

    def test_event_records_premeasured_duration(self, sink_path):
        tracer = Tracer(JsonlTraceSink(sink_path))
        tracer.event("engine.apply", 1.5e-6, {"relation": "lineitem"})
        tracer.close()
        (record,) = _read_records(sink_path)
        assert record["duration_seconds"] == 1.5e-6
        assert record["attrs"] == {"relation": "lineitem"}


class TestSampling:
    def test_fractional_rate_records_exact_deterministic_count(self, sink_path):
        tracer = Tracer(JsonlTraceSink(sink_path), sample_rate=0.01)
        for _ in range(1000):
            with tracer.span("service.ingest"):
                pass
        tracer.close()
        assert len(_read_records(sink_path)) == 10
        assert tracer.spans_recorded == 10
        assert tracer.spans_skipped == 990

    def test_zero_rate_never_records_and_hands_out_null_span(self, sink_path):
        tracer = Tracer(JsonlTraceSink(sink_path), sample_rate=0.0)
        span = tracer.span("service.ingest")
        assert span is NULL_SPAN
        with span:
            pass
        tracer.close()
        assert _read_records(sink_path) == []

    def test_children_of_sampled_root_are_always_recorded(self, sink_path):
        tracer = Tracer(JsonlTraceSink(sink_path), sample_rate=0.5)
        for _ in range(10):
            with tracer.span("root"):
                with tracer.span("child"):
                    pass
        tracer.close()
        records = _read_records(sink_path)
        roots = [r for r in records if r["name"] == "root"]
        children = [r for r in records if r["name"] == "child"]
        # Sampling decides at the root; every sampled root keeps its child.
        assert len(roots) == 5
        assert len(children) == 5
        root_ids = {r["span_id"] for r in roots}
        assert all(c["parent_id"] in root_ids for c in children)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(None, sample_rate=1.5)

    def test_sampling_is_thread_safe(self, sink_path):
        tracer = Tracer(JsonlTraceSink(sink_path), sample_rate=0.1)

        def worker():
            for _ in range(500):
                with tracer.span("root"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        tracer.close()
        recorded = len(_read_records(sink_path))
        # Accumulator sampling is exact up to float error (0.1 summed 2000
        # times drifts by one ulp-step); concurrency must not lose more.
        assert abs(recorded - 200) <= 1
        assert tracer.spans_recorded == recorded


class TestSink:
    def test_rotation_keeps_one_backup(self, sink_path):
        sink = JsonlTraceSink(sink_path, max_bytes=256)
        tracer = Tracer(sink)
        for i in range(50):
            tracer.event("engine.apply", 1e-6, {"i": i})
        tracer.close()
        backup = _read_records(sink_path + ".1")
        current = _read_records(sink_path)
        assert backup  # rotation happened at least once
        # No record is lost across the live file and the newest backup; the
        # newest backup ends exactly where the live file begins.
        assert backup[-1]["attrs"]["i"] + 1 == current[0]["attrs"]["i"] if current else True

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        assert tracer.span("anything") is NULL_SPAN
        tracer.event("anything", 1.0)
        tracer.flush()
        tracer.close()
        assert tracer.spans_recorded == 0
