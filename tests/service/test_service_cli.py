"""The ``python -m repro.service`` command line."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service.__main__ import main
from repro.service.client import ServiceClient
from repro.streams.adapters import write_events_jsonl
from svc_helpers import make_workload_fixture

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(scope="module")
def stream_file(tmp_path_factory):
    fixture = make_workload_fixture("Q1", events=160, max_live_orders=20)
    path = tmp_path_factory.mktemp("streams") / "q1.jsonl"
    write_events_jsonl(path, fixture.events)
    return path


def test_replay_prints_views_and_saves_a_checkpoint(stream_file, tmp_path, capsys):
    assert main([
        "replay", str(stream_file),
        "--query", "Q1", "--engine", "batched", "--batch-size", "25",
        "--checkpoint-dir", str(tmp_path), "--limit", "3",
    ]) == 0
    out = capsys.readouterr().out
    assert "replayed 160 events; service version 160 (batched engine)" in out
    assert "view Q1_sum_qty" in out
    assert "checkpoint saved:" in out
    assert list(tmp_path.glob("checkpoint-*.ckpt"))


def test_replay_resumes_from_the_saved_checkpoint(stream_file, tmp_path, capsys):
    assert main([
        "replay", str(stream_file), "--query", "Q1",
        "--checkpoint-dir", str(tmp_path),
    ]) == 0
    capsys.readouterr()
    # Second run restores version 160 and finds nothing new to apply.
    assert main([
        "replay", str(stream_file), "--query", "Q1",
        "--checkpoint-dir", str(tmp_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "restored checkpoint at version 160" in out
    assert "replayed 0 events" in out


def test_list_names_the_workload_queries(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "Q1" in out and "VWAP" in out


def test_serve_accepts_wire_clients(stream_file):
    """The real CLI path: spawn the server process, talk to it, shut it down."""
    env = dict(os.environ, PYTHONPATH=SRC + os.pathsep + os.environ.get("PYTHONPATH", ""))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "serve", "--query", "Q1", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        line = process.stdout.readline()
        assert "serving" in line, line
        address = line.split(" on ")[1].split(" ")[0]
        host, port = address.split(":")
        deadline = time.time() + 10
        client = None
        while client is None:
            try:
                client = ServiceClient(host, int(port), timeout=10)
            except OSError:
                if time.time() > deadline:
                    raise
                time.sleep(0.05)
        assert client.ping() == 0
        snapshot = client.query("Q1_sum_qty")
        assert snapshot.version == 0
        client.shutdown()
        client.close()
        assert process.wait(timeout=10) == 0
    finally:
        if process.poll() is None:
            process.send_signal(signal.SIGKILL)
            process.wait()
