"""Correctness-observability operations over the wire: ``explain``,
``explain-row``, the schema-tagged ``metrics`` scrape, and the audit summary
in ``stats``."""

import pytest

from repro.errors import ServiceError
from repro.service import ServiceClient, ViewService, engine_for_mode, start_in_thread
from repro.telemetry import Telemetry
from svc_helpers import build_service, load_statics, make_workload_fixture


def serve(service):
    handle = start_in_thread(service)
    return handle


@pytest.fixture(scope="module")
def q3_dense():
    """Q3 with a shrunk key space so the three-way join has live rows."""
    return make_workload_fixture("Q3", events=300, scale=0.05, max_live_orders=25)


def test_explain_op_joins_plan_with_observed_counters(q1):
    service = build_service(q1)
    handle = serve(service)
    try:
        with ServiceClient(*handle.address) as client:
            client.ingest(q1.events)
            report = client.explain(query="Q1")
            assert report["schema"] == "repro.explain/1"
            assert report["query"] == "Q1"
            assert report["observed"]["events_processed"] == len(q1.events)
            assert set(report["maps"]) == set(q1.program.maps)
            assert report["plan"]["summary"]["triggers"] >= 1
    finally:
        handle.stop()
        service.close()


def test_explain_row_op_round_trips_history(q3_dense):
    q3 = q3_dense
    service = build_service(q3)
    service.enable_provenance(depth=32)
    handle = serve(service)
    try:
        with ServiceClient(*handle.address) as client:
            client.ingest(q3.events)
            snapshot = client.query(q3.root)
            key = max(snapshot.entries, key=repr)
            report = client.explain_row(q3.root, list(key))
            assert report["view"] == q3.root
            assert report["key"] == list(key)
            assert report["current"] == snapshot.entries[key]
            assert report["version"] == snapshot.version
            assert report["history"], "no mutations recorded for a live row"
            last = report["history"][-1]
            assert last["new"] == snapshot.entries[key]
            assert last["cause"]["kind"] == "event"
        # The wire history matches what the engine reports locally.
        local = service.explain_row(q3.root, key)
        assert [e["new"] for e in local["history"]] == [
            e["new"] for e in report["history"]
        ]
    finally:
        handle.stop()
        service.close()


def test_explain_row_requires_provenance(q1):
    service = build_service(q1)
    handle = serve(service)
    try:
        with ServiceClient(*handle.address) as client:
            client.ingest(q1.events[:50])
            with pytest.raises(ServiceError, match="provenance is not enabled"):
                client.explain_row(q1.root)
    finally:
        handle.stop()
        service.close()


def test_metrics_op_is_schema_tagged(q1):
    telemetry = Telemetry(enabled=True)
    service = ViewService(
        engine_for_mode(q1.program, "incremental", telemetry=telemetry),
        telemetry=telemetry,
    )
    load_statics(service, q1.program, q1.statics)
    handle = serve(service)
    try:
        with ServiceClient(*handle.address) as client:
            client.ingest(q1.events)
            scraped = client.metrics()
            assert scraped["schema"] == "repro.stats/1"
            processed = scraped["metrics"]["repro_engine_events_processed_total"]
            assert processed["series"][0]["value"] == len(q1.events)
    finally:
        handle.stop()
        service.close()


def test_stats_op_carries_audit_summary(q1):
    telemetry = Telemetry(enabled=True)
    service = ViewService(
        engine_for_mode(q1.program, "incremental", telemetry=telemetry),
        telemetry=telemetry,
    )
    service.enable_audit(check_every=64, sample_rows=4)
    load_statics(service, q1.program, q1.statics)
    handle = serve(service)
    try:
        with ServiceClient(*handle.address) as client:
            client.ingest(q1.events)
            stats = client.statistics()
            audit = stats["audit"]
            assert audit["active"] is True
            assert audit["checks"] >= 1
            assert audit["drift_total"] == 0
            scraped = client.metrics()
            assert scraped["metrics"]["repro_audit_drift_total"]["series"][0]["value"] == 0
    finally:
        handle.stop()
        service.close()
