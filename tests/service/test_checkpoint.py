"""Checkpoint/restore: a restarted service converges to bit-identical views."""

import pickle

import pytest

from repro.errors import ExecutionError, RuntimeEngineError, ServiceError
from repro.service import CheckpointStore, ViewService, engine_for_mode
from svc_helpers import build_service, load_statics, reference_entries

ENGINE_MODES = [
    ("incremental", {}),
    ("batched", {"batch_size": 11}),
    ("partitioned", {"partitions": 2}),
    ("partitioned", {"partitions": 2, "batch_size": 7}),
]


def typed(entries):
    """Entries with value types pinned: bit-identical, not merely ==."""
    return {key: (type(value), value) for key, value in entries.items()}


# -- the store --------------------------------------------------------------------


def test_store_lists_and_loads_checkpoints_in_version_order(tmp_path):
    store = CheckpointStore(tmp_path / "ckpt")
    assert store.latest() is None
    store.save(10, {"kind": "single"})
    store.save(200, {"kind": "single", "marker": True})
    store.save(30, {"kind": "single"})
    versions = [info.version for info in store.list()]
    assert versions == [10, 30, 200]
    assert store.latest().version == 200
    payload = store.load()
    assert payload["version"] == 200
    assert payload["engine_state"]["marker"] is True
    # No stray temp files survive the atomic writes.
    assert not list((tmp_path / "ckpt").glob("*.tmp"))


def test_store_load_falls_back_past_corrupt_checkpoints(tmp_path):
    """A truncated newest file (crash mid-durability) must not break restore:
    the next older intact checkpoint is loaded instead."""
    store = CheckpointStore(tmp_path)
    store.save(10, {"kind": "single", "marker": "old"})
    newest = store.save(20, {"kind": "single"})
    newest.path.write_bytes(newest.path.read_bytes()[:16])  # the "power loss"
    payload = store.load()
    assert payload["version"] == 10
    assert payload["engine_state"]["marker"] == "old"
    # An explicitly requested checkpoint still fails loudly.
    with pytest.raises(Exception):
        store.load(newest)
    # With every file corrupt, load reports them all instead of guessing.
    for info in store.list():
        info.path.write_bytes(b"\x80garbage")
    with pytest.raises(ServiceError, match="no intact checkpoint"):
        store.load()


def test_store_rejects_unknown_formats_and_empty_dirs(tmp_path):
    store = CheckpointStore(tmp_path)
    with pytest.raises(ServiceError, match="no checkpoints"):
        store.load()
    info = store.save(5, {"kind": "single"})
    payload = pickle.loads(info.path.read_bytes())
    payload["format"] = 99
    info.path.write_bytes(pickle.dumps(payload))
    with pytest.raises(ServiceError, match="format"):
        store.load()


# -- service restart --------------------------------------------------------------


@pytest.mark.parametrize("mode,kwargs", ENGINE_MODES)
def test_interrupted_run_restores_to_bit_identical_views(q1, tmp_path, mode, kwargs):
    """Kill mid-stream, restore, replay the tail: same result_dict, same types."""
    cut = 130
    # The uninterrupted run.
    uninterrupted = build_service(q1, mode, **kwargs)
    uninterrupted.ingest(q1.events)
    expected = uninterrupted.query(q1.root).entries
    uninterrupted.close()

    # A service that checkpoints mid-stream and then dies.
    first = build_service(q1, mode, checkpoint_dir=tmp_path, **kwargs)
    first.ingest(q1.events[:cut])
    info = first.checkpoint()
    assert info.version == cut
    first.close()  # the "crash": everything after the checkpoint is lost

    # A fresh process: new engine, restore, replay the same source from scratch.
    restored = ViewService(
        engine_for_mode(q1.program, mode, **kwargs), checkpoint_dir=tmp_path
    )
    assert restored.restore() == cut
    applied = restored.replay(q1.events, batch_size=32)
    assert applied == len(q1.events) - cut
    assert restored.version == len(q1.events)
    got = restored.query(q1.root).entries
    assert typed(got) == typed(expected)
    assert typed(got) == typed(
        reference_entries(q1.program, q1.statics, q1.events, None, q1.root)
    )
    restored.close()


def test_restore_falls_back_when_the_newest_checkpoint_is_corrupt(q1, tmp_path):
    """End to end: newest checkpoint truncated, service restores the older
    one and the tail replay still converges to the reference."""
    first = build_service(q1, checkpoint_dir=tmp_path)
    first.ingest(q1.events[:100])
    intact = first.checkpoint()
    first.ingest(q1.events[100:150])
    corrupt = first.checkpoint()
    first.close()
    corrupt.path.write_bytes(corrupt.path.read_bytes()[:64])

    restored = ViewService(
        engine_for_mode(q1.program, "incremental"), checkpoint_dir=tmp_path
    )
    assert restored.restore() == intact.version == 100
    restored.replay(q1.events, batch_size=40)
    assert typed(restored.query(q1.root).entries) == typed(
        reference_entries(q1.program, q1.statics, q1.events, None, q1.root)
    )
    restored.close()


def test_restore_closes_live_subscriptions(q1, tmp_path):
    """The version can jump backwards across a restore, so stale subscribers
    are closed (resubscribe-with-fresh-snapshot, like overflow) instead of
    receiving duplicate or rewound deltas."""
    service = build_service(q1, checkpoint_dir=tmp_path)
    service.ingest(q1.events[:50])
    service.checkpoint()
    subscription = service.subscribe(q1.root)
    service.ingest(q1.events[50:100])
    assert service.restore() == 50
    assert subscription.closed and not subscription.overflowed
    pending = len(subscription)
    service.ingest(q1.events[50:100])  # the replayed tail
    assert len(subscription) == pending, "closed subscriber received replayed deltas"
    service.close()


def test_checkpoint_preserves_static_tables(q3, tmp_path):
    """Restore must not require (or tolerate) reloading static relations."""
    first = build_service(q3, checkpoint_dir=tmp_path)
    first.ingest(q3.events[:80])
    first.checkpoint()
    first.close()

    restored = ViewService(
        engine_for_mode(q3.program, "incremental"), checkpoint_dir=tmp_path
    )
    restored.restore()  # statics are inside the state; nothing else loaded
    restored.replay(q3.events)
    baseline = build_service(q3)
    baseline.ingest(q3.events)
    assert typed(restored.query(q3.root).entries) == typed(
        baseline.query(q3.root).entries
    )


def test_restore_returns_none_without_checkpoints(q1, tmp_path):
    service = build_service(q1, checkpoint_dir=tmp_path)
    assert service.restore() is None
    with pytest.raises(ServiceError, match="without a checkpoint directory"):
        build_service(q1).restore()


def test_replay_checkpoint_every_leaves_periodic_checkpoints(q1, tmp_path):
    """Cuts land every 50 events: a full base first, then incremental deltas."""
    service = build_service(q1, checkpoint_dir=tmp_path)
    service.replay(q1.events[:200], batch_size=25, checkpoint_every=50)
    bases = [info.version for info in service.checkpoints.list()]
    deltas = [info.version for info in service.checkpoints.list_deltas()]
    assert bases == [50]
    assert deltas == [100, 150, 200]


def test_replay_checkpoint_every_full_cuts_only(q1, tmp_path):
    """checkpoint_full_every=1 restores the all-full-checkpoints layout."""
    service = build_service(q1, checkpoint_dir=tmp_path, checkpoint_full_every=1)
    service.replay(q1.events[:200], batch_size=25, checkpoint_every=50)
    versions = [info.version for info in service.checkpoints.list()]
    assert versions[-1] == 200
    assert not service.checkpoints.list_deltas()


def test_stream_stats_survive_restarts(q1, tmp_path):
    first = build_service(q1, checkpoint_dir=tmp_path)
    first.ingest(q1.events[:90])
    stats_before = first.statistics()["stream"]
    first.checkpoint()
    restored = ViewService(
        engine_for_mode(q1.program, "incremental"), checkpoint_dir=tmp_path
    )
    restored.restore()
    assert restored.statistics()["stream"] == stats_before


# -- engine-state compatibility ---------------------------------------------------


def test_single_states_are_interchangeable_between_incremental_and_batched(q1):
    batched = build_service(q1, "batched", batch_size=17)
    batched.ingest(q1.events[:100])
    state = batched.engine.checkpoint_state()
    incremental = engine_for_mode(q1.program, "incremental")
    incremental.restore_state(state)
    assert typed(incremental.result_dict(q1.root)) == typed(
        batched.engine.result_dict(q1.root)
    )
    assert incremental.events_processed == 100


def test_mismatched_state_kinds_are_rejected(q1):
    partitioned = engine_for_mode(q1.program, "partitioned", partitions=2)
    incremental = engine_for_mode(q1.program, "incremental")
    with pytest.raises(RuntimeEngineError, match="single"):
        incremental.restore_state(partitioned.checkpoint_state())
    with pytest.raises(ExecutionError, match="partitioned"):
        partitioned.restore_state(incremental.checkpoint_state())
    three = engine_for_mode(q1.program, "partitioned", partitions=3)
    with pytest.raises(ExecutionError, match="partitions"):
        three.restore_state(partitioned.checkpoint_state())
    partitioned.close()
    three.close()


def test_restore_rejects_unknown_state_formats(q1):
    incremental = engine_for_mode(q1.program, "incremental")
    state = incremental.checkpoint_state()
    state["format"] = 99
    with pytest.raises(RuntimeEngineError, match="format"):
        incremental.restore_state(state)
    partitioned = engine_for_mode(q1.program, "partitioned", partitions=2)
    state = partitioned.checkpoint_state()
    state["format"] = 99
    with pytest.raises(ExecutionError, match="format"):
        partitioned.restore_state(state)
    partitioned.close()


def test_restore_rejects_states_from_other_programs(q1, q3):
    foreign = engine_for_mode(q3.program, "incremental")
    state = foreign.checkpoint_state()
    engine = engine_for_mode(q1.program, "incremental")
    with pytest.raises(RuntimeEngineError, match="not declared"):
        engine.restore_state(state)


def test_process_backend_checkpoints_round_trip(q1):
    """Worker processes serve state/restore over their pipes."""
    engine = engine_for_mode(q1.program, "partitioned", partitions=2, backend="process")
    try:
        engine.apply_many(q1.events[:60])
        state = engine.checkpoint_state()
        fresh = engine_for_mode(
            q1.program, "partitioned", partitions=2, backend="process"
        )
        try:
            fresh.restore_state(state)
            assert typed(fresh.result_dict(q1.root)) == typed(
                engine.result_dict(q1.root)
            )
            fresh.apply_many(q1.events[60:90])
            engine.apply_many(q1.events[60:90])
            assert typed(fresh.result_dict(q1.root)) == typed(
                engine.result_dict(q1.root)
            )
        finally:
            fresh.close()
    finally:
        engine.close()
