"""Delta subscriptions: ordered, exactly-once, bounded, loss-free."""

import pytest

from repro.agca.builders import agg, prod, rel, val
from repro.compiler.hoivm import compile_query
from repro.delta.events import delete, insert
from repro.errors import ServiceError
from repro.service import ViewService, engine_for_mode
from repro.service.subscriptions import Subscription, SubscriptionRegistry
from svc_helpers import build_service, reference_entries


def apply_deltas(initial, notifications):
    """Reconstruct a view by replaying (key, old, new) notifications."""
    state = dict(initial)
    for n in notifications:
        current = state.get(n.key)
        assert current == n.old, (
            f"notification {n} does not chain: view holds {current!r}, not {n.old!r}"
        )
        if n.new is None:
            state.pop(n.key, None)
        else:
            state[n.key] = n.new
    return state


# -- registry-level behaviour ----------------------------------------------------


def test_publish_is_ordered_and_exactly_once_per_subscriber():
    registry = SubscriptionRegistry()
    first = registry.subscribe("V")
    second = registry.subscribe("V")
    registry.publish("V", 3, [(("a",), None, 1), (("b",), None, 2)])
    registry.publish("V", 5, [(("a",), 1, 7)])
    for subscription in (first, second):
        notifications = subscription.poll()
        assert [n.sequence for n in notifications] == [0, 1, 2]
        assert [n.version for n in notifications] == [3, 3, 5]
        assert [(n.key, n.old, n.new) for n in notifications] == [
            (("a",), None, 1), (("b",), None, 2), (("a",), 1, 7),
        ]
        assert subscription.poll() == []  # drained: nothing is delivered twice


def test_unsubscribed_consumers_stop_receiving():
    registry = SubscriptionRegistry()
    subscription = registry.subscribe("V")
    registry.publish("V", 1, [(("k",), None, 1)])
    registry.unsubscribe(subscription)
    registry.publish("V", 2, [(("k",), 1, 2)])
    assert len(subscription.poll()) == 1
    assert "V" not in registry.stats()


def test_overflow_closes_the_subscription_instead_of_dropping():
    registry = SubscriptionRegistry()
    subscription = registry.subscribe("V", maxlen=3)
    enqueued = registry.publish("V", 1, [((i,), None, i) for i in range(5)])
    assert enqueued == 3  # only what actually reached a queue is counted
    assert subscription.closed and subscription.overflowed
    stats = subscription.stats()
    assert stats.published == 3 and stats.pending == 3 and stats.overflowed
    # Everything that was queued before the overflow is still delivered in order.
    assert [n.key for n in subscription.poll()] == [(0,), (1,), (2,)]
    # The closed subscription no longer inflates the publish count.
    assert registry.publish("V", 2, [((9,), None, 9)]) == 0


def test_queue_bound_must_be_positive():
    with pytest.raises(ServiceError):
        Subscription("V", 1, maxlen=0)


def test_unknown_overflow_policy_is_rejected():
    with pytest.raises(ServiceError, match="policy"):
        Subscription("V", 1, policy="drop")


def test_coalesce_policy_absorbs_overflow_into_net_deltas():
    """Backpressured changes collapse per key instead of closing the stream:
    the queued prefix is delivered verbatim, then one net old->new per key
    touched during backpressure (old from the first absorbed change, new from
    the last), with net no-ops elided — so replaying notifications still
    reconstructs the view exactly."""
    registry = SubscriptionRegistry()
    subscription = registry.subscribe("V", maxlen=2, policy="coalesce")
    registry.publish("V", 1, [(("a",), None, 1), (("b",), None, 2)])  # fills queue
    registry.publish(
        "V", 2, [(("a",), 1, 5), (("c",), None, 3), (("a",), 5, 7)]
    )
    registry.publish("V", 3, [(("b",), 2, 4), (("b",), 4, 2)])  # net no-op
    assert not subscription.closed and not subscription.overflowed
    notifications = subscription.poll()
    assert [n.sequence for n in notifications] == [0, 1, 2, 3]
    assert [(n.version, n.key, n.old, n.new) for n in notifications] == [
        (1, ("a",), None, 1),
        (1, ("b",), None, 2),
        (2, ("a",), 1, 7),   # intermediate value 5 elided
        (2, ("c",), None, 3),  # ("b",) net no-op: skipped entirely
    ]
    assert apply_deltas({}, notifications) == {("a",): 7, ("b",): 2, ("c",): 3}
    stats = subscription.stats()
    assert stats.coalesced == 5 and not stats.overflowed
    # Drained: publishing goes back to the queue, ordering intact.
    registry.publish("V", 4, [(("c",), 3, 9)])
    assert [(n.key, n.old, n.new) for n in subscription.poll()] == [(("c",), 3, 9)]


def test_queue_stats_report_lag():
    registry = SubscriptionRegistry()
    subscription = registry.subscribe("V")
    registry.publish("V", 1, [((i,), None, i) for i in range(4)])
    subscription.poll(max_items=1)
    stats = subscription.stats()
    assert stats.published == 4 and stats.delivered == 1
    assert stats.pending == 3 and stats.lag == 3
    assert stats.as_dict()["lag"] == 3


# -- service-level behaviour -----------------------------------------------------


@pytest.mark.parametrize("mode,kwargs", [
    ("incremental", {}),
    ("batched", {"batch_size": 13}),
    ("partitioned", {"partitions": 2, "batch_size": 5}),
])
def test_subscriber_reconstructs_the_view_from_deltas(q1, mode, kwargs):
    """Every output-key change arrives exactly once, in order, chaining old->new.

    The acceptance property for batched execution: replaying the received
    notifications over the initial snapshot must yield exactly the final view.
    """
    service = build_service(q1, mode, **kwargs)
    service.ingest(q1.events[:40])
    initial = service.query(q1.root).entries
    subscription = service.subscribe(q1.root)
    for start in range(40, 240, 25):
        service.ingest(q1.events[start:start + 25])
    notifications = subscription.poll()
    assert notifications, "a 200-event Q1 stream must change the view"
    assert [n.sequence for n in notifications] == list(range(len(notifications)))
    versions = [n.version for n in notifications]
    assert versions == sorted(versions)
    assert not subscription.overflowed
    reconstructed = apply_deltas(initial, notifications)
    final = service.query(q1.root).entries
    assert reconstructed == final
    assert final == reference_entries(q1.program, q1.statics, q1.events, 240, q1.root)
    service.close()


@pytest.mark.parametrize("mode,kwargs", [
    ("incremental", {}),
    ("batched", {"batch_size": 2}),
])
def test_deltas_cover_added_changed_and_deleted_keys(mode, kwargs):
    """sum(b) group by a: group 2 vanishes when its only tuple is deleted."""
    program = compile_query(
        agg(("a",), prod(rel("R", "a", "b"), val("b"))),
        {"R": ("a", "b")},
        name="V",
    )
    service = ViewService(engine_for_mode(program, mode, **kwargs))
    subscription = service.subscribe("V")
    service.ingest([insert("R", 1, 10), insert("R", 2, 5)])
    service.ingest([insert("R", 1, 3)])
    service.ingest([delete("R", 2, 5)])
    notifications = subscription.poll()
    assert [(n.version, n.key, n.old, n.new) for n in notifications] == [
        (2, (1,), None, 10),
        (2, (2,), None, 5),
        (3, (1,), 10, 13),
        (4, (2,), 5, None),
    ]
    assert apply_deltas({}, notifications) == service.query("V").entries == {(1,): 13}


def test_coalescing_subscriber_reconstructs_the_view_under_backpressure(q1):
    """A tiny coalescing queue over a long stream: the subscription stays
    open and its (fewer) net notifications still rebuild the final view."""
    service = build_service(q1)
    service.ingest(q1.events[:40])
    initial = service.query(q1.root).entries
    subscription = service.subscribe(q1.root, maxlen=4, policy="coalesce")
    for start in range(40, 240, 25):
        service.ingest(q1.events[start:start + 25])
    notifications = subscription.poll()
    assert not subscription.closed and not subscription.overflowed
    assert subscription.stats().coalesced > 0
    assert [n.sequence for n in notifications] == list(range(len(notifications)))
    assert apply_deltas(initial, notifications) == service.query(q1.root).entries
    service.close()


def test_two_subscribers_get_independent_sequences(q1):
    service = build_service(q1)
    early = service.subscribe(q1.root)
    service.ingest(q1.events[:30])
    late = service.subscribe(q1.root)
    service.ingest(q1.events[30:60])
    early_notifications = early.poll()
    late_notifications = late.poll()
    assert [n.sequence for n in early_notifications] == list(
        range(len(early_notifications))
    )
    assert [n.sequence for n in late_notifications] == list(
        range(len(late_notifications))
    )
    # The late subscriber sees only changes after it joined.
    assert min(n.version for n in late_notifications) > 30
