"""End-to-end TCP serving: equivalence under concurrent ingest, subscriptions
over the wire, checkpoint/restart convergence, protocol errors."""

import threading
import time

import pytest

from repro.errors import ServiceError
from repro.service import ServiceClient, ViewService, engine_for_mode, start_in_thread
from svc_helpers import build_service, reference_entries

ENGINE_MODES = [
    ("incremental", {}),
    ("batched", {"batch_size": 13}),
    ("partitioned", {"partitions": 2}),
]


def serve(fixture, mode="incremental", checkpoint_dir=None, **kwargs):
    service = build_service(fixture, mode, checkpoint_dir=checkpoint_dir, **kwargs)
    handle = start_in_thread(service)
    return service, handle


@pytest.mark.parametrize("mode,kwargs", ENGINE_MODES)
def test_served_views_match_reference_at_every_queried_version(q1, mode, kwargs):
    """The acceptance property: while one client ingests, snapshots read by a
    concurrent client equal the full-recomputation reference at their version,
    for every engine mode."""
    service, handle = serve(q1, mode, **kwargs)
    total = 240
    chunk = 16
    observed = {}
    done = threading.Event()

    def ingest_loop():
        with ServiceClient(*handle.address) as client:
            for start in range(0, total, chunk):
                client.ingest(q1.events[start:start + chunk])
        done.set()

    def query_loop():
        with ServiceClient(*handle.address) as client:
            while not done.is_set():
                snapshot = client.query(q1.root)
                observed.setdefault(snapshot.version, snapshot.entries)
            observed.setdefault(total, client.query(q1.root).entries)

    threads = [threading.Thread(target=ingest_loop), threading.Thread(target=query_loop)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    try:
        assert observed, "the query loop never completed a read"
        assert total in observed
        # Snapshot consistency: only ingest-batch boundaries are observable.
        assert all(version % chunk == 0 for version in observed)
        for version, entries in sorted(observed.items()):
            assert entries == reference_entries(
                q1.program, q1.statics, q1.events, version, q1.root
            ), f"served snapshot at version {version} diverged from the reference"
    finally:
        handle.stop()
        service.close()


def test_wire_subscription_is_ordered_and_exactly_once(q1):
    service, handle = serve(q1, "batched", batch_size=9)
    received = []
    try:
        with ServiceClient(*handle.address) as ingestor:
            ingestor.ingest(q1.events[:50])
            baseline = ingestor.query(q1.root)

            subscriber = ServiceClient(*handle.address)
            stream = subscriber.subscribe(q1.root)

            published = 0
            for start in range(50, 200, 30):
                published += ingestor.ingest(q1.events[start:start + 30]).notifications
            final = ingestor.query(q1.root)

            assert published > 0
            notifications = stream.take(published)
            subscriber.close()

        assert [n.sequence for n in notifications] == list(range(len(notifications)))
        versions = [n.version for n in notifications]
        assert versions == sorted(versions)
        state = dict(baseline.entries)
        for n in notifications:
            assert state.get(n.key) == n.old
            if n.new is None:
                state.pop(n.key, None)
            else:
                state[n.key] = n.new
        assert state == final.entries
    finally:
        handle.stop()
        service.close()


def test_in_process_ingest_reaches_wire_subscribers(q1):
    """Deltas published by ViewService.ingest() on the embedding process — no
    wire request involved — must still be pumped to TCP subscribers."""
    service, handle = serve(q1)
    try:
        subscriber = ServiceClient(*handle.address)
        stream = subscriber.subscribe(q1.root)
        received = []
        consumer = threading.Thread(target=lambda: received.extend(stream.take(1)))
        consumer.start()
        published = 0
        start = 0
        while published == 0 and start < len(q1.events):
            published = service.ingest(q1.events[start:start + 30]).notifications
            start += 30
        assert published > 0
        consumer.join(timeout=10)
        assert not consumer.is_alive(), "subscriber never saw the in-process deltas"
        assert received and received[0].view == q1.root
        subscriber.close()
    finally:
        handle.stop()
        service.close()


def test_idle_subscription_survives_the_request_timeout(q1):
    """A delta stream that stays quiet longer than the client's request
    timeout must keep blocking, not die with socket.timeout."""
    service, handle = serve(q1)
    try:
        with ServiceClient(*handle.address) as ingestor:
            subscriber = ServiceClient(*handle.address, timeout=0.5)
            stream = subscriber.subscribe(q1.root)
            time.sleep(1.2)  # idle for longer than the subscriber's timeout
            published = 0
            start = 0
            while published == 0 and start < len(q1.events):
                published = ingestor.ingest(
                    q1.events[start:start + 30]
                ).notifications
                start += 30
            assert published > 0
            notifications = stream.take(published)
            assert len(notifications) == published
            subscriber.close()
    finally:
        handle.stop()
        service.close()


@pytest.mark.parametrize("mode,kwargs", ENGINE_MODES)
def test_checkpoint_restart_replay_converges_over_the_wire(q1, tmp_path, mode, kwargs):
    """Kill a served service mid-stream; a restarted one restores the
    checkpoint, replays the tail and serves bit-identical views."""
    total = 200
    cut = 96
    service, handle = serve(q1, mode, checkpoint_dir=tmp_path, **kwargs)
    with ServiceClient(*handle.address) as client:
        client.ingest(q1.events[:cut])
        version, path = client.checkpoint()
        assert version == cut and str(tmp_path) in path
        client.ingest(q1.events[cut:cut + 10])  # lost after the "crash"
        client.shutdown()
    handle.stop()
    service.close()

    restarted = ViewService(
        engine_for_mode(q1.program, mode, **kwargs), checkpoint_dir=tmp_path
    )
    assert restarted.restore() == cut
    handle = start_in_thread(restarted)
    try:
        with ServiceClient(*handle.address) as client:
            assert client.ping() == cut
            client.ingest(q1.events[cut:total])  # the client replays the tail
            snapshot = client.query(q1.root)
        assert snapshot.version == total
        assert snapshot.entries == reference_entries(
            q1.program, q1.statics, q1.events, total, q1.root
        )
    finally:
        handle.stop()
        restarted.close()


def test_protocol_errors_are_reported_not_fatal(q1):
    service, handle = serve(q1)
    try:
        with ServiceClient(*handle.address) as client:
            with pytest.raises(ServiceError, match="unknown operation"):
                client._request({"op": "frobnicate"})
            with pytest.raises(ServiceError, match="unknown view"):
                client.query("NoSuchView")
            with pytest.raises(ServiceError, match="checkpoint directory"):
                client.checkpoint()
            # Type-malformed but valid-JSON requests get error responses too,
            # instead of silently killing the connection.
            with pytest.raises(ServiceError, match="ValueError"):
                client._request(
                    {"op": "subscribe", "view": q1.root, "queue_size": "big"}
                )
            with pytest.raises(ServiceError, match="TypeError"):
                client._request({"op": "ingest", "events": 5})
            # The connection survives failed requests.
            assert client.ping() == 0
    finally:
        handle.stop()
        service.close()


def test_stats_round_trip_over_the_wire(q1):
    service, handle = serve(q1, "partitioned", partitions=2)
    try:
        with ServiceClient(*handle.address) as client:
            client.ingest(q1.events[:40])
            statistics = client.statistics()
        assert statistics["version"] == 40
        assert statistics["engine"]["events_processed"] == 40
        assert statistics["engine"]["spec"]["partitions"] == 2
    finally:
        handle.stop()
        service.close()
