"""ViewService: versioned ingestion, snapshot reads and source plumbing."""

import threading

import pytest

from repro.delta.events import StreamEvent
from repro.errors import ServiceError
from repro.service import ViewService, open_source
from repro.streams.adapters import write_events_csv, write_events_jsonl
from repro.streams.agenda import Agenda
from svc_helpers import build_service, reference_entries


def test_version_is_the_event_offset(q1):
    service = build_service(q1)
    assert service.version == 0
    assert service.ingest(q1.events[:10]).version == 10
    assert service.ingest(q1.events[10:25]).version == 25
    snapshot = service.query(q1.root)
    assert snapshot.version == 25
    assert snapshot.view == q1.root
    assert snapshot.entries == reference_entries(q1.program, q1.statics, q1.events, 25, q1.root)


def test_snapshot_rows_carry_key_columns(q1):
    service = build_service(q1)
    service.ingest(q1.events[:60])
    snapshot = service.query(q1.root)
    rows = snapshot.rows()
    assert len(rows) == len(snapshot.entries)
    for row in rows:
        assert set(snapshot.columns) <= set(row)
        assert "value" in row


@pytest.mark.parametrize("mode,kwargs", [
    ("incremental", {}),
    ("batched", {"batch_size": 7}),
    ("partitioned", {"partitions": 2}),
])
def test_queries_see_whole_batches_only(q1, mode, kwargs):
    """A reader concurrent with ingestion observes only batch-boundary states."""
    service = build_service(q1, mode, **kwargs)
    chunks = [q1.events[i:i + 15] for i in range(0, 150, 15)]
    boundaries = {0, *range(15, 151, 15)}
    observed = {}
    stop = threading.Event()

    def read_loop():
        while not stop.is_set():
            snapshot = service.query(q1.root)
            observed.setdefault(snapshot.version, snapshot.entries)

    reader = threading.Thread(target=read_loop)
    reader.start()
    try:
        for chunk in chunks:
            service.ingest(chunk)
    finally:
        stop.set()
        reader.join()
    observed.setdefault(150, service.query(q1.root).entries)
    assert set(observed) <= boundaries
    for version, entries in observed.items():
        assert entries == reference_entries(q1.program, q1.statics, q1.events, version, q1.root), (
            f"snapshot at version {version} is not the reference prefix state"
        )
    service.close()


def test_ingest_rows_wraps_plain_rows(q1):
    service = build_service(q1)
    relation = q1.events[0].relation
    rows = [
        event.values
        for event in q1.events[:20]
        if event.sign > 0 and event.relation == relation
    ][:5]
    assert rows
    result = service.ingest_rows(relation, rows)
    assert result.count == len(rows)
    assert service.version == len(rows)


def test_open_source_accepts_files_iterables_and_callables(q1, tmp_path):
    events = q1.events[:20]
    csv_path = tmp_path / "stream.csv"
    jsonl_path = tmp_path / "stream.jsonl"
    write_events_csv(csv_path, events)
    write_events_jsonl(jsonl_path, events)
    assert list(open_source(jsonl_path)) == events
    assert list(open_source(str(jsonl_path))) == events
    assert [e.relation for e in open_source(csv_path)] == [e.relation for e in events]
    assert list(open_source(events)) == events
    assert list(open_source(Agenda(events))) == events
    assert list(open_source(lambda: iter(events))) == events
    with pytest.raises(ServiceError):
        open_source(tmp_path / "stream.parquet")


def test_replay_skips_the_already_applied_prefix(q1):
    service = build_service(q1)
    service.ingest(q1.events[:40])
    applied = service.replay(q1.events[:100], batch_size=16)
    assert applied == 60
    assert service.version == 100
    assert service.query(q1.root).entries == reference_entries(
        q1.program, q1.statics, q1.events, 100, q1.root
    )


@pytest.mark.parametrize("mode,kwargs", [
    ("incremental", {}),
    ("batched", {"batch_size": 7}),
    ("partitioned", {"partitions": 2}),
])
def test_malformed_batches_are_rejected_before_any_state_changes(q1, mode, kwargs):
    """A bad event anywhere in a batch rejects the whole batch up front: the
    good prefix is never applied, the version never advances."""
    service = build_service(q1, mode, **kwargs)
    service.ingest(q1.events[:20])
    before = service.query(q1.root).entries
    good = q1.events[20:22]
    with pytest.raises(ServiceError, match="not a stream relation"):
        service.ingest([*good, StreamEvent("NoSuchRelation", (1, 2))])
    with pytest.raises(ServiceError, match="expects"):
        service.ingest([*good, StreamEvent(good[0].relation, good[0].values[:-1])])
    assert service.version == 20
    assert service.query(q1.root).entries == before
    # The service stays healthy, and the rejected prefix can be re-ingested.
    service.ingest(q1.events[20:40])
    assert service.query(q1.root).entries == reference_entries(
        q1.program, q1.statics, q1.events, 40, q1.root
    )
    service.close()


def test_engine_failure_mid_batch_poisons_the_service_until_restore(q1, tmp_path):
    """An engine error that escapes validation must not leave the service
    serving state that matches no version: every operation (including
    checkpointing) fails hard until a checkpoint restore recovers it."""
    service = build_service(q1, checkpoint_dir=tmp_path)
    service.ingest(q1.events[:40])
    service.checkpoint()
    lineitem = next(e for e in q1.events if e.relation == "Lineitem")
    poison = StreamEvent("Lineitem", tuple(None for _ in lineitem.values))
    with pytest.raises(TypeError):  # right relation and arity, bad value types
        service.ingest([q1.events[40], poison])
    for operation in (
        lambda: service.query(q1.root),
        lambda: service.ingest(q1.events[40:41]),
        lambda: service.checkpoint(),
        lambda: service.statistics(),
    ):
        with pytest.raises(ServiceError, match="restore"):
            operation()
    assert service.restore() == 40
    service.replay(q1.events[:100], batch_size=16)
    assert service.query(q1.root).entries == reference_entries(
        q1.program, q1.statics, q1.events, 100, q1.root
    )
    service.close()


def test_unknown_views_and_closed_service_raise(q1):
    service = build_service(q1)
    with pytest.raises(ServiceError, match="unknown view"):
        service.query("NoSuchView")
    # Q1 has many roots: an unnamed query is a ServiceError, not a KeyError.
    with pytest.raises(ServiceError, match="specify one"):
        service.query()
    with pytest.raises(ServiceError, match="without a checkpoint directory"):
        service.checkpoint()
    service.close()
    with pytest.raises(ServiceError, match="closed"):
        service.ingest(q1.events[:1])
    with pytest.raises(ServiceError, match="closed"):
        service.statistics()
    service.close()  # idempotent


def test_rejects_objects_without_the_engine_protocol():
    with pytest.raises(ServiceError, match="engine protocol"):
        ViewService(object())


def test_statistics_are_json_serializable(q1):
    import json

    service = build_service(q1, "batched", batch_size=5)
    service.subscribe(q1.root)
    service.ingest(q1.events[:30])
    statistics = service.statistics()
    assert statistics["version"] == 30
    assert statistics["stream"]["total"] == 30
    assert statistics["engine"]["events_processed"] == 30
    json.dumps(statistics)
