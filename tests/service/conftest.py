"""Shared fixtures for the serving-layer tests.

Most tests run over the TPC-H Q1 workload: a single-relation, linear
aggregate whose view fills quickly (keys are (returnflag, linestatus)), so
small streams already exercise inserts, updates and — with a bounded live
working set — deletions of contributing tuples.
"""

import pytest

from svc_helpers import make_workload_fixture


@pytest.fixture(scope="package")
def q1():
    """Q1 with a small live working set, so the stream contains deletions."""
    fixture = make_workload_fixture("Q1", events=300, max_live_orders=20)
    assert any(event.sign < 0 for event in fixture.events)
    return fixture


@pytest.fixture(scope="package")
def q3():
    """Q3 joins Orders/Lineitem with a static Customer table."""
    return make_workload_fixture("Q3", events=260, max_live_orders=25)
