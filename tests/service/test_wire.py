"""The JSONL wire encoding, including non-JSON-native (Fraction) values."""

import json
from fractions import Fraction

import pytest

from repro.errors import ServiceError
from repro.service.subscriptions import DeltaNotification
from repro.service.wire import (
    decode_entries,
    decode_value,
    dump_line,
    encode_entries,
    encode_value,
    parse_line,
)


def test_plain_values_pass_through():
    for value in (7, 2.5, "x", True, None):
        assert encode_value(value) == value
        assert decode_value(value) == value


def test_fractions_round_trip_bit_identically():
    value = Fraction(10, 3)
    encoded = encode_value(value)
    json.dumps(encoded)  # wire-safe
    decoded = decode_value(json.loads(json.dumps(encoded)))
    assert decoded == value and isinstance(decoded, Fraction)


def test_entries_round_trip_with_mixed_key_and_value_types():
    entries = {(1, "x", 2.5): Fraction(7, 2), (None, True, 0): 9}
    rows = json.loads(json.dumps(encode_entries(entries)))
    assert decode_entries(rows) == entries


def test_delta_notifications_serialize_fraction_values():
    """Pushed deltas must survive json.dumps even for rational aggregates."""
    notification = DeltaNotification(
        sequence=0, version=3, view="V", key=(Fraction(1, 3),),
        old=Fraction(10, 3), new=None,
    )
    line = dump_line({"type": "delta", **notification.as_dict()})
    message = parse_line(line)
    assert decode_value(message["old"]) == Fraction(10, 3)
    assert decode_value(message["key"][0]) == Fraction(1, 3)
    assert message["new"] is None


def test_parse_line_rejects_garbage():
    with pytest.raises(ServiceError, match="malformed"):
        parse_line(b"not json\n")
    with pytest.raises(ServiceError, match="expected an object"):
        parse_line(b"[1,2]\n")
