"""Physical-design explain: plan documents, observed joins, and the CLIs."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from inspect_helpers import load_statics
from repro.codegen.describe import KERNELS_SCHEMA, describe_program
from repro.compiler.hoivm import compile_query
from repro.inspect.explain import (
    EXPLAIN_SCHEMA,
    build_explain_report,
    render_explain_text,
)
from repro.service import engine_for_mode
from repro.workloads import all_workloads

REPO = Path(__file__).resolve().parents[2]


def compile_workload(name):
    translated = all_workloads()[name].query_factory()
    return compile_query(
        translated.roots(),
        translated.schemas(),
        static_relations=translated.static_relations(),
    )


def run_cli(*argv):
    return subprocess.run(
        [sys.executable, *argv],
        capture_output=True,
        text=True,
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


class TestDescribe:
    def test_kernel_document_for_q1(self):
        document = describe_program(compile_workload("Q1"))
        assert document["schema"] == KERNELS_SCHEMA
        assert document["triggers"], "no triggers described"
        summary = document["summary"]
        assert summary["compiled_statements"] + summary["fallback_statements"] > 0


class TestExplainReport:
    @pytest.mark.parametrize("name", sorted(all_workloads()))
    def test_every_workload_gets_a_report(self, name):
        """The acceptance bar: explain emits a report for every query."""
        program = compile_workload(name)
        report = build_explain_report(program, query=name)
        assert report["schema"] == EXPLAIN_SCHEMA
        assert report["query"] == name
        assert report["views"] == sorted(program.roots)
        assert report["plan"]["schema"] == KERNELS_SCHEMA
        assert set(report["maps"]) == set(program.maps)
        text = render_explain_text(report)
        assert name in text and "plan:" in text

    def test_observed_counters_joined_per_map(self, q1):
        engine = engine_for_mode(q1.program, "incremental")
        load_statics(engine, q1.program, q1.statics)
        engine.apply_many(q1.events)
        report = build_explain_report(
            q1.program, query="Q1", statistics=engine.statistics()
        )
        assert report["observed"]["events_processed"] == len(q1.events)
        observed = [m["observed"] for m in report["maps"].values() if m.get("observed")]
        assert observed, "no per-map observed stats joined"
        assert any(stats.get("entries", 0) > 0 for stats in observed)
        text = render_explain_text(report)
        assert "observed:" in text

    def test_partitioned_statistics_are_merged(self, q3):
        engine = engine_for_mode(q3.program, "partitioned", partitions=2)
        try:
            load_statics(engine, q3.program, q3.statics)
            engine.apply_many(q3.events)
            engine.flush()
            report = build_explain_report(
                q3.program, query="Q3", statistics=engine.statistics()
            )
            observed = report["observed"]
            assert observed["events_processed"] == len(q3.events)
            assert observed["maps"], "partitioned map counters were not merged"
            assert "partitioning" in observed
        finally:
            if hasattr(engine, "close"):
                engine.close()


class TestCLIs:
    def test_codegen_dump_json(self):
        result = run_cli("-m", "repro.codegen", "dump", "Q6", "--json")
        assert result.returncode == 0, result.stderr
        document = json.loads(result.stdout)
        assert document["schema"] == KERNELS_SCHEMA

    def test_inspect_explain_offline_json(self):
        result = run_cli(
            "-m", "repro.inspect", "explain", "Q6",
            "--events", "120", "--json",
        )
        assert result.returncode == 0, result.stderr
        report = json.loads(result.stdout)
        assert report["schema"] == EXPLAIN_SCHEMA
        assert report["observed"]["events_processed"] == 120

    def test_inspect_explain_unknown_query_fails_cleanly(self):
        result = run_cli("-m", "repro.inspect", "explain", "NOPE")
        assert result.returncode == 1
        assert "error" in (result.stderr + result.stdout).lower()
