"""Helper functions shared by the observability tests (imported by name)."""

from types import SimpleNamespace

from repro.compiler.hoivm import compile_query
from repro.workloads import workload


def make_fixture(query_name, events, **stream_kwargs):
    spec = workload(query_name)
    translated = spec.query_factory()
    program = compile_query(
        translated.roots(),
        translated.schemas(),
        static_relations=translated.static_relations(),
    )
    return SimpleNamespace(
        spec=spec,
        program=program,
        statics=spec.static_tables(),
        events=list(spec.stream_factory(events=events, **stream_kwargs)),
        root=next(iter(translated.roots())),
    )


def load_statics(engine_or_service, program, statics):
    for relation, rows in statics.items():
        if relation in program.static_relations:
            engine_or_service.load_static(relation, rows)
