"""Shared fixtures for the correctness-observability tests.

Q1 exercises a single-relation aggregate whose eleven root views all mutate
on every event (the provenance worst case); Q3 joins three streamed
relations, so its rings see inserts, updates and deletions of joined rows.
Both streams bound the live working set so deletions actually occur; Q3
shrinks the key space (``scale``) so the three-way join produces rows.
"""

import pytest

from inspect_helpers import make_fixture


@pytest.fixture(scope="package")
def q1():
    fixture = make_fixture("Q1", events=300, max_live_orders=20)
    assert any(event.sign < 0 for event in fixture.events)
    return fixture


@pytest.fixture(scope="package")
def q3():
    return make_fixture("Q3", events=300, scale=0.05, max_live_orders=25)
