"""Row provenance: ring recording, engine-mode equivalence, durability."""

import pytest

from inspect_helpers import load_statics
from repro.errors import RuntimeEngineError
from repro.inspect.provenance import ProvenanceRecorder, cause_to_dict, entry_to_dict
from repro.service import engine_for_mode


def run_with_provenance(fixture, mode, depth=64, **kwargs):
    """A finished engine of ``mode`` with provenance on from the start."""
    engine = engine_for_mode(fixture.program, mode, **kwargs)
    load_statics(engine, fixture.program, fixture.statics)
    engine.enable_provenance(depth=depth)
    engine.apply_many(fixture.events)
    engine.flush()
    return engine


def transitions(engine, view):
    """History reduced to what must agree across engine modes.

    Versions differ (batched engines stamp the fold's end version) and
    causes differ by design (event vs fold), so equivalence is over the
    ordered value transitions per key.
    """
    return [(e[1], e[2], e[3]) for e in engine.provenance.history(view)]


class TestRecorder:
    def test_depth_must_be_positive(self):
        with pytest.raises(RuntimeEngineError, match="depth must be positive"):
            ProvenanceRecorder({"V": ("a",)}, depth=0)

    def test_unknown_view_rejected(self):
        recorder = ProvenanceRecorder({"V": ("a",)})
        with pytest.raises(RuntimeEngineError, match="not tracking"):
            recorder.history("other")

    def test_ring_is_bounded(self, q1):
        shallow = run_with_provenance(q1, "incremental", depth=4)
        deep = run_with_provenance(q1, "incremental", depth=4096)
        view = q1.root
        short = shallow.provenance.history(view)
        full = deep.provenance.history(view)
        assert len(short) == 4
        assert len(full) > 4
        assert short == full[-4:]  # the ring keeps the newest entries

    def test_history_keys_are_table_column_tuples(self, q1):
        engine = run_with_provenance(q1, "incremental", depth=16)
        columns = engine.maps.table(q1.root).columns
        for entry in engine.provenance.history(q1.root):
            assert type(entry[1]) is tuple
            assert len(entry[1]) == len(columns)

    def test_cause_and_entry_wire_forms(self):
        assert cause_to_dict(None) is None
        assert cause_to_dict(("event", "R", "insert", (1, 2)))["kind"] == "event"
        fold = cause_to_dict(("fold", "R", "delta", 8, 3))
        assert (fold["events"], fold["tuples"]) == (8, 3)
        assert cause_to_dict(("restore", 41)) == {"kind": "restore", "version": 41}
        entry = entry_to_dict((7, (1, "x"), 0, 5, ("restore", 7)))
        assert entry["version"] == 7 and entry["key"] == [1, "x"]


class TestModeEquivalence:
    """The same stream yields the same per-key transitions in every mode."""

    def test_incremental_matches_compiled_exactly(self, q3):
        incremental = run_with_provenance(q3, "incremental")
        compiled = run_with_provenance(q3, "compiled")
        view = q3.root
        # Per-event engines agree on versions and causes too, not just values.
        assert incremental.provenance.history(view) == compiled.provenance.history(view)
        assert incremental.result_dict(view) == compiled.result_dict(view)

    def test_batched_transitions_match_and_attribute_to_folds(self, q3):
        compiled = run_with_provenance(q3, "compiled")
        batched = run_with_provenance(q3, "batched", batch_size=32)
        view = q3.root
        assert transitions(batched, view) == transitions(compiled, view)
        causes = [e[4] for e in batched.engine.provenance.history(view)]
        assert causes and all(cause[0] == "fold" for cause in causes)

    @pytest.mark.parametrize("backend", ["sequential", "process"])
    def test_partitioned_explain_row_matches_current_state(self, q3, backend):
        compiled = run_with_provenance(q3, "compiled")
        engine = engine_for_mode(q3.program, "partitioned", partitions=2, backend=backend)
        try:
            load_statics(engine, q3.program, q3.statics)
            engine.enable_provenance(depth=64)
            engine.apply_many(q3.events)
            engine.flush()
            view = q3.root
            live = engine.result_dict(view)
            assert live == compiled.result_dict(view)
            key = max(live, key=repr)
            report = engine.explain_row(view, key)
            assert report["current"] == live[key]
            assert report["history"], "the tracked row has no recorded mutations"
            for entry in report["history"]:
                assert entry["key"] == list(key)
                assert "partition" in entry  # merged histories say who recorded them
        finally:
            if hasattr(engine, "close"):
                engine.close()


class TestDurability:
    def test_checkpoint_restore_preserves_history(self, q3):
        engine = run_with_provenance(q3, "compiled", depth=32)
        view = q3.root
        before = engine.provenance.history(view)
        assert before

        restored = engine_for_mode(q3.program, "compiled")
        load_statics(restored, q3.program, q3.statics)
        restored.restore_state(engine.checkpoint_state())
        assert restored.provenance.history(view) == before
        assert restored.result_dict(view) == engine.result_dict(view)

    def test_restored_engine_keeps_recording(self, q1):
        half = len(q1.events) // 2
        engine = run_with_provenance(q1, "incremental", depth=512)
        partial = engine_for_mode(q1.program, "incremental")
        load_statics(partial, q1.program, q1.statics)
        partial.enable_provenance(depth=512)
        partial.apply_many(q1.events[:half])

        restored = engine_for_mode(q1.program, "incremental")
        load_statics(restored, q1.program, q1.statics)
        restored.restore_state(partial.checkpoint_state())
        restored.apply_many(q1.events[half:])
        # Transitions recorded after the restore match an uninterrupted run.
        tail = transitions(restored, q1.root)[-half:]
        assert tail == transitions(engine, q1.root)[-len(tail):]

    def test_disabled_engine_has_no_recorder(self, q1):
        engine = engine_for_mode(q1.program, "incremental")
        load_statics(engine, q1.program, q1.statics)
        engine.apply_many(q1.events[:50])
        with pytest.raises(RuntimeEngineError, match="provenance is not enabled"):
            engine.explain_row(q1.root)
