"""Online view auditor: clean workloads audit clean, corruption is caught."""

import pytest

from inspect_helpers import load_statics
from repro.errors import AuditError, ServiceError
from repro.service import ViewService, engine_for_mode
from repro.telemetry import Telemetry


def audited_service(fixture, telemetry=None, checkpoint_dir=None, **audit_kwargs):
    """A service with auditing enabled before any data arrives."""
    service = ViewService(
        engine_for_mode(fixture.program, "incremental", telemetry=telemetry),
        telemetry=telemetry,
        checkpoint_dir=checkpoint_dir,
    )
    service.enable_audit(**audit_kwargs)
    load_statics(service, fixture.program, fixture.statics)
    return service


def corrupt_root_map(service, fixture):
    """Flip one live row behind the engine's back; returns the victim key."""
    table = service.engine.maps.table(fixture.root)
    live = service.engine.result_dict(fixture.root)
    key = max(live, key=repr)
    table.set(key, live[key] + 1_000_000)
    return key


class TestCleanWorkloads:
    def test_zero_drift_on_clean_stream(self, q1):
        service = audited_service(q1, check_every=64, sample_rows=4)
        service.ingest(q1.events)
        report = service.audit_now()
        assert report.divergences == []
        auditor = service.auditor
        assert auditor.drift_total == 0
        assert auditor.checks >= 1 and auditor.rows_checked > 0
        service.close()

    def test_cadence_checks_run_during_ingest(self, q1):
        service = audited_service(q1, check_every=32, sample_rows=4)
        for start in range(0, len(q1.events), 50):
            service.ingest(q1.events[start:start + 50])
        # 300 events at a 32-event cadence must have audited several times
        # without audit_now ever being called.
        assert service.auditor.checks >= 5
        assert service.auditor.drift_total == 0
        service.close()

    def test_static_join_views_audit_clean(self, q3):
        service = audited_service(q3, check_every=64, sample_rows=4)
        service.ingest(q3.events)
        assert service.audit_now().divergences == []
        service.close()


class TestCorruptionDetection:
    def test_injected_corruption_is_detected(self, q1):
        service = audited_service(q1, check_every=10_000, sample_rows=10_000)
        service.ingest(q1.events)
        assert service.audit_now().divergences == []
        key = corrupt_root_map(service, q1)
        report = service.audit_now()
        assert any(
            d["view"] == q1.root and tuple(d["key"]) == tuple(key)
            for d in report.divergences
        )
        assert service.auditor.drift_total >= 1
        assert service.auditor.last_divergence_version == report.version

    def test_fail_fast_raises_audit_error(self, q1):
        service = audited_service(
            q1, check_every=10_000, sample_rows=10_000, fail_fast=True
        )
        service.ingest(q1.events)
        corrupt_root_map(service, q1)
        with pytest.raises(AuditError, match="diverged"):
            service.audit_now()

    def test_dropped_row_is_detected(self, q1):
        """Full comparison also catches rows that vanished entirely."""
        service = audited_service(q1, check_every=10_000, sample_rows=10_000)
        service.ingest(q1.events)
        table = service.engine.maps.table(q1.root)
        live = service.engine.result_dict(q1.root)
        victim = max(live, key=repr)
        table.set(victim, 0)  # multiplicity 0 deletes the row
        report = service.audit_now()
        assert any(tuple(d["key"]) == tuple(victim) for d in report.divergences)


class TestLifecycle:
    def test_enable_audit_must_precede_data(self, q1):
        service = ViewService(engine_for_mode(q1.program, "incremental"))
        load_statics(service, q1.program, q1.statics)
        with pytest.raises(ServiceError, match="before statics"):
            service.enable_audit()
        service.close()

    def test_audit_state_survives_checkpoint_restore(self, q1, tmp_path):
        service = audited_service(
            q1, checkpoint_dir=str(tmp_path), check_every=64, sample_rows=4
        )
        service.ingest(q1.events[:200])
        version = service.checkpoint().version
        service.close()

        restored = ViewService(
            engine_for_mode(q1.program, "incremental"), checkpoint_dir=str(tmp_path)
        )
        restored.enable_audit(check_every=64, sample_rows=4)
        assert restored.restore() == version
        restored.ingest(q1.events[200:])
        assert restored.audit_now().divergences == []
        restored.close()

    def test_restore_without_audit_state_deactivates(self, q1, tmp_path):
        plain = ViewService(
            engine_for_mode(q1.program, "incremental"), checkpoint_dir=str(tmp_path)
        )
        load_statics(plain, q1.program, q1.statics)
        plain.ingest(q1.events[:100])
        plain.checkpoint()
        plain.close()

        restored = ViewService(
            engine_for_mode(q1.program, "incremental"), checkpoint_dir=str(tmp_path)
        )
        restored.enable_audit()
        restored.restore()
        assert not restored.auditor.active
        with pytest.raises(AuditError, match="inactive"):
            restored.audit_now()
        restored.close()


class TestTelemetry:
    def test_audit_metrics_published_to_registry(self, q1):
        telemetry = Telemetry(enabled=True)
        service = audited_service(
            q1, telemetry=telemetry, check_every=64, sample_rows=4
        )
        service.ingest(q1.events)
        service.audit_now()
        families = telemetry.registry.snapshot()
        assert families["repro_audit_checks_total"]["series"][0]["value"] >= 1
        assert families["repro_audit_drift_total"]["series"][0]["value"] == 0
        assert families["repro_audit_active"]["series"][0]["value"] == 1
        service.close()
