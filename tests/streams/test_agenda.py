"""Tests for the agenda (replayable update stream)."""

from repro.delta.events import delete, insert
from repro.streams.agenda import Agenda


def test_append_assigns_sequence_numbers():
    agenda = Agenda()
    first = agenda.insert_row("R", 1)
    second = agenda.delete_row("R", 1)
    assert first.sequence == 0 and second.sequence == 1
    assert first.kind == "insert" and second.kind == "delete"
    assert len(agenda) == 2


def test_iteration_yields_events_in_order():
    events = [insert("R", 1), insert("S", 2), delete("R", 1)]
    agenda = Agenda(events)
    assert list(agenda) == events
    assert agenda.events() == events


def test_indexing_and_slicing():
    agenda = Agenda([insert("R", i) for i in range(5)])
    assert agenda[0] == insert("R", 0)
    assert agenda[1:3] == [insert("R", 1), insert("R", 2)]


def test_prefix_copies_the_first_events():
    agenda = Agenda([insert("R", i) for i in range(10)])
    prefix = agenda.prefix(3)
    assert len(prefix) == 3
    assert prefix.events() == agenda.events()[:3]


def test_relations_and_counts():
    agenda = Agenda([insert("R", 1), insert("R", 2), delete("R", 1), insert("S", 1)])
    assert agenda.relations() == {"R", "S"}
    counts = agenda.counts()
    assert counts["R"] == {"insert": 2, "delete": 1}
    assert counts["S"] == {"insert": 1, "delete": 0}


def test_extend_and_entries():
    agenda = Agenda()
    agenda.extend([insert("R", 1), insert("R", 2)])
    assert [entry.relation for entry in agenda.entries()] == ["R", "R"]


def test_replayability_multiple_iterations_see_same_events():
    agenda = Agenda([insert("R", i) for i in range(4)])
    assert list(agenda) == list(agenda)
