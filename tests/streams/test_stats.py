"""Tests for stream statistics."""

from repro.delta.events import delete, insert
from repro.streams.stats import StreamStats, summarize_stream


def test_summarize_counts_inserts_and_deletes():
    stats = summarize_stream([insert("R", 1), insert("R", 2), delete("R", 1), insert("S", 1)])
    assert stats.total == 4
    assert stats.inserts == 3 and stats.deletes == 1
    assert stats.per_relation == {"R": 3, "S": 1}
    assert stats.delete_fraction == 0.25


def test_peak_live_tuples_tracks_maximum():
    events = [insert("R", 1), insert("R", 2), insert("R", 3), delete("R", 1), insert("R", 4)]
    stats = summarize_stream(events)
    assert stats.peak_live_tuples["R"] == 3


def test_empty_stream():
    stats = summarize_stream([])
    assert stats == StreamStats()
    assert stats.delete_fraction == 0.0
