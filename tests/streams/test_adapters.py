"""Tests for CSV/row stream adapters."""

import pytest

from repro.delta.events import DELETE, insert
from repro.errors import WorkloadError
from repro.streams.adapters import events_from_csv, events_from_rows, write_events_csv


def test_events_from_sequences():
    events = list(events_from_rows("R", [(1, "x"), (2, "y")]))
    assert [e.values for e in events] == [(1, "x"), (2, "y")]
    assert all(e.relation == "R" and e.sign == 1 for e in events)


def test_events_from_mappings_requires_columns():
    rows = [{"a": 1, "b": 2}]
    events = list(events_from_rows("R", rows, columns=("b", "a")))
    assert events[0].values == (2, 1)
    with pytest.raises(WorkloadError):
        list(events_from_rows("R", rows))


def test_events_from_rows_delete_sign():
    events = list(events_from_rows("R", [(1,)], sign=DELETE))
    assert events[0].sign == DELETE


def test_csv_round_trip(tmp_path):
    path = tmp_path / "stream.csv"
    events = [insert("R", 1, "x", 2.5), insert("S", 2, "comma, inside", 3)]
    events.append(events[0].inverted())
    count = write_events_csv(path, events)
    assert count == 3
    loaded = list(events_from_csv(path))
    assert loaded == events


def test_csv_value_types_are_restored(tmp_path):
    path = tmp_path / "stream.csv"
    write_events_csv(path, [insert("R", 7, 2.5, "text")])
    (event,) = list(events_from_csv(path))
    assert event.values == (7, 2.5, "text")
    assert isinstance(event.values[0], int) and isinstance(event.values[1], float)


def test_malformed_csv_rows_raise(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("insert\n")
    with pytest.raises(WorkloadError):
        list(events_from_csv(path))
    path.write_text("upsert,R,1\n")
    with pytest.raises(WorkloadError):
        list(events_from_csv(path))
