"""Tests for CSV/JSONL/row stream adapters."""

import pytest

from repro.delta.events import DELETE, delete, insert
from repro.errors import WorkloadError
from repro.streams.adapters import (
    event_from_dict,
    event_to_dict,
    events_from_csv,
    events_from_jsonl,
    events_from_rows,
    write_events_csv,
    write_events_jsonl,
)


def test_events_from_sequences():
    events = list(events_from_rows("R", [(1, "x"), (2, "y")]))
    assert [e.values for e in events] == [(1, "x"), (2, "y")]
    assert all(e.relation == "R" and e.sign == 1 for e in events)


def test_events_from_mappings_requires_columns():
    rows = [{"a": 1, "b": 2}]
    events = list(events_from_rows("R", rows, columns=("b", "a")))
    assert events[0].values == (2, 1)
    with pytest.raises(WorkloadError):
        list(events_from_rows("R", rows))


def test_events_from_rows_delete_sign():
    events = list(events_from_rows("R", [(1,)], sign=DELETE))
    assert events[0].sign == DELETE


def test_csv_round_trip(tmp_path):
    path = tmp_path / "stream.csv"
    events = [insert("R", 1, "x", 2.5), insert("S", 2, "comma, inside", 3)]
    events.append(events[0].inverted())
    count = write_events_csv(path, events)
    assert count == 3
    loaded = list(events_from_csv(path))
    assert loaded == events


def test_csv_value_types_are_restored(tmp_path):
    path = tmp_path / "stream.csv"
    write_events_csv(path, [insert("R", 7, 2.5, "text")])
    (event,) = list(events_from_csv(path))
    assert event.values == (7, 2.5, "text")
    assert isinstance(event.values[0], int) and isinstance(event.values[1], float)


def test_malformed_csv_rows_raise(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("insert\n")
    with pytest.raises(WorkloadError):
        list(events_from_csv(path))
    path.write_text("upsert,R,1\n")
    with pytest.raises(WorkloadError, match="unknown event kind"):
        list(events_from_csv(path))


def test_csv_round_trips_bools_and_none(tmp_path):
    """The old parser returned "True"/"None" strings for typed values."""
    path = tmp_path / "typed.csv"
    write_events_csv(path, [insert("R", True, False, None, 7)])
    (event,) = list(events_from_csv(path))
    assert event.values == (True, False, None, 7)
    assert isinstance(event.values[0], bool) and isinstance(event.values[1], bool)
    assert event.values[2] is None and isinstance(event.values[3], int)


def test_empty_files_yield_no_events(tmp_path):
    for name in ("empty.csv", "empty.jsonl"):
        path = tmp_path / name
        path.write_text("")
        reader = events_from_csv if name.endswith(".csv") else events_from_jsonl
        assert list(reader(path)) == []


def test_jsonl_round_trip_with_deletes_and_mixed_types(tmp_path):
    path = tmp_path / "stream.jsonl"
    events = [
        insert("R", 1, "x", 2.5, True, None),
        delete("R", 1, "x", 2.5, True, None),
        insert("S", "comma, inside", "True", "7"),  # strings stay strings
    ]
    assert write_events_jsonl(path, events) == 3
    loaded = list(events_from_jsonl(path))
    assert loaded == events
    assert [type(v) for v in loaded[0].values] == [type(v) for v in events[0].values]
    assert loaded[1].sign == DELETE
    assert loaded[2].values == ("comma, inside", "True", "7")


def test_jsonl_skips_blank_lines(tmp_path):
    path = tmp_path / "gaps.jsonl"
    path.write_text('{"kind":"insert","relation":"R","values":[1]}\n\n'
                    '{"kind":"delete","relation":"R","values":[1]}\n')
    assert [e.sign for e in events_from_jsonl(path)] == [1, -1]


def test_malformed_jsonl_raises_with_line_numbers(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"kind":"insert","relation":"R","values":[1]}\nnot json\n')
    with pytest.raises(WorkloadError, match="line 2"):
        list(events_from_jsonl(path))
    path.write_text('{"kind":"upsert","relation":"R","values":[1]}\n')
    with pytest.raises(WorkloadError, match="unknown event kind"):
        list(events_from_jsonl(path))
    path.write_text('{"kind":"insert","values":[1]}\n')
    with pytest.raises(WorkloadError, match="missing field"):
        list(events_from_jsonl(path))
    path.write_text('[1, 2, 3]\n')
    with pytest.raises(WorkloadError, match="expected an object"):
        list(events_from_jsonl(path))


def test_event_dict_round_trip_validates_shape():
    event = insert("R", 1, "x", None)
    assert event_from_dict(event_to_dict(event)) == event
    with pytest.raises(WorkloadError):
        event_from_dict({"kind": "insert", "relation": 7, "values": []})
    with pytest.raises(WorkloadError):
        event_from_dict({"kind": "insert", "relation": "R", "values": "oops"})
    with pytest.raises(WorkloadError):
        event_from_dict("not a mapping")
