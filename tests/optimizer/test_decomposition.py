"""Tests for join-graph decomposition."""

from repro.agca.builders import cmp, const, lift, prod, rel, val
from repro.optimizer.decomposition import connected_components, decompose_product


def test_disconnected_relations_split():
    components = decompose_product(prod(rel("R", "a"), rel("S", "b")))
    assert len(components) == 2


def test_shared_variable_connects():
    components = decompose_product(prod(rel("R", "a", "b"), rel("S", "b", "c")))
    assert len(components) == 1


def test_bound_variables_do_not_connect():
    # After a delta, the shared variable is a trigger variable: the remaining
    # factors fall apart into independent components (this is what avoids
    # materializing cross products).
    expr = prod(rel("R", "a", "x"), rel("S", "x", "b"))
    assert len(decompose_product(expr, bound=["x"])) == 2
    assert len(decompose_product(expr)) == 1


def test_chain_connectivity_is_transitive():
    expr = prod(rel("R", "a", "b"), rel("S", "b", "c"), rel("T", "c", "d"))
    assert len(decompose_product(expr)) == 1


def test_conditions_connect_components_through_variables():
    factors = [rel("R", "a"), rel("S", "b"), cmp("a", "<", "b")]
    components = connected_components(factors)
    assert len(components) == 1


def test_constants_form_their_own_component():
    factors = [rel("R", "a"), const(3)]
    components = connected_components(factors)
    assert len(components) == 2


def test_component_order_is_preserved():
    factors = [rel("R", "a"), rel("S", "b"), val("a")]
    components = connected_components(factors)
    assert components[0][0] == rel("R", "a")
    assert components[0][1] == val("a")
    assert components[1] == [rel("S", "b")]


def test_empty_input():
    assert connected_components([]) == []
