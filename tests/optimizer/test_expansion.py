"""Tests for polynomial expansion and factorization."""

from repro.agca.ast import Product, Sum
from repro.agca.builders import agg, const, plus, prod, rel, val
from repro.agca.evaluator import DictSource, Evaluator
from repro.core.gmr import GMR
from repro.optimizer.expansion import expand, factorize_sum, monomials, product_factors


def test_product_factors_flattens():
    expr = prod(rel("R", "a"), prod(rel("S", "b"), const(2)))
    assert len(product_factors(expr)) == 3
    assert product_factors(rel("R", "a")) == [rel("R", "a")]


def test_monomials_of_plain_product_is_single():
    expr = prod(rel("R", "a"), rel("S", "b"))
    assert monomials(expr) == [expr]


def test_expand_distributes_product_over_sum():
    expr = prod(rel("R", "a"), plus(rel("S", "a"), rel("T", "a")))
    expanded = expand(expr)
    assert isinstance(expanded, Sum)
    assert len(expanded.terms) == 2
    for term in expanded.terms:
        assert isinstance(term, Product)


def test_expand_distributes_aggsum_over_sum():
    expr = agg(("a",), plus(rel("R", "a"), rel("S", "a")))
    expanded = expand(expr)
    assert isinstance(expanded, Sum)
    assert all(term.group == ("a",) for term in expanded.terms)


def test_expansion_preserves_semantics():
    source = DictSource(
        relations={
            "R": GMR.from_rows([{"a": 1}, {"a": 2}]),
            "S": GMR.from_rows([{"a": 1}]),
            "T": GMR.from_rows([{"a": 2}, {"a": 2}]),
        },
        schemas={"R": ("a",), "S": ("a",), "T": ("a",)},
    )
    expr = prod(rel("R", "a"), plus(rel("S", "a"), rel("T", "a")))
    evaluator = Evaluator(source)
    assert evaluator.evaluate(expr) == evaluator.evaluate(expand(expr))


def test_lift_bodies_are_not_expanded():
    from repro.agca.builders import lift

    inner = plus(rel("S", "b"), rel("T", "b"))
    expr = prod(rel("R", "a"), lift("z", agg((), inner)))
    assert len(monomials(expr)) == 1


def test_factorize_common_leading_factor():
    expr = plus(prod(rel("R", "a"), rel("S", "b")), prod(rel("R", "a"), rel("T", "b")))
    factored = factorize_sum(expr)
    assert isinstance(factored, Product)
    assert factored.terms[0] == rel("R", "a")


def test_factorize_merges_identical_monomials():
    expr = plus(prod(rel("R", "a"), rel("S", "b")), prod(rel("R", "a"), rel("S", "b")))
    factored = factorize_sum(expr)
    # Either fully factored or merged with a coefficient of 2: both are fine,
    # as long as semantics are preserved.
    source = DictSource(
        relations={"R": GMR.from_rows([{"a": 1}]), "S": GMR.from_rows([{"b": 2}])},
        schemas={"R": ("a",), "S": ("b",)},
    )
    evaluator = Evaluator(source)
    assert evaluator.evaluate(expr) == evaluator.evaluate(factored)


def test_factorize_of_non_sum_is_identity():
    expr = prod(rel("R", "a"), rel("S", "b"))
    assert factorize_sum(expr) is expr
