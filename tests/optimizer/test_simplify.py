"""Tests for expression simplification (unification, partial evaluation, cancellation)."""

from repro.agca.ast import Cmp, Lift, Product, Relation, Sum, Value, VConst, VVar
from repro.agca.builders import agg, cmp, const, lift, neg, plus, prod, rel, val, var, vadd, vmul
from repro.agca.evaluator import DictSource, Evaluator
from repro.agca.printer import to_string
from repro.core.gmr import GMR
from repro.optimizer.simplify import fold_value, simplify


def test_zero_annihilates_products():
    assert simplify(prod(rel("R", "a"), const(0))) == Value(VConst(0))


def test_one_is_dropped_from_products():
    simplified = simplify(prod(const(1), rel("R", "a")))
    assert simplified == Relation("R", ("a",))


def test_constants_are_folded_in_products():
    simplified = simplify(prod(const(2), const(3), rel("R", "a")))
    assert isinstance(simplified, Product)
    assert Value(VConst(6)) in simplified.terms


def test_zero_terms_are_dropped_from_sums():
    assert simplify(plus(const(0), rel("R", "a"))) == Relation("R", ("a",))
    assert simplify(plus(const(0), const(0))) == Value(VConst(0))


def test_equal_monomials_merge_coefficients():
    expr = plus(rel("R", "a"), rel("R", "a"))
    simplified = simplify(expr)
    assert simplified == prod(const(2), rel("R", "a"))


def test_opposite_terms_cancel():
    expr = plus(rel("R", "a"), neg(rel("R", "a")))
    assert simplify(expr) == Value(VConst(0))


def test_lift_difference_cancels_when_bodies_equal():
    body = agg((), prod(rel("S", "c"), val("c")))
    expr = plus(lift("z", plus(body, const(0))), neg(lift("z", body)))
    assert simplify(expr) == Value(VConst(0))


def test_constant_comparison_is_folded():
    assert simplify(cmp(1, "<", 2)) == Value(VConst(1))
    assert simplify(cmp(2, "<", 1)) == Value(VConst(0))


def test_fold_value_arithmetic_identities():
    assert fold_value(vadd(VConst(2), VConst(3))) == VConst(5)
    assert fold_value(vmul(VVar("x"), VConst(1))) == VVar("x")
    assert fold_value(vmul(VVar("x"), VConst(0))) == VConst(0)
    assert fold_value(vadd(VVar("x"), VConst(0))) == VVar("x")


def test_lift_of_trigger_value_propagates_and_disappears():
    # (a := x) * R(a, b): the lift pins a to the trigger variable x and the
    # relation column is renamed, so no loop over a remains.
    expr = prod(lift("a", val("x")), rel("R", "a", "b"))
    simplified = simplify(expr, bound=["x"])
    assert simplified == Relation("R", ("x", "b"))


def test_needed_output_keeps_the_lift():
    expr = prod(lift("a", val("x")), rel("R", "a", "b"))
    simplified = simplify(expr, bound=["x"], needed=["a"])
    assert any(isinstance(node, Lift) for node in [simplified, *getattr(simplified, "terms", [])])


def test_lift_of_constant_not_pushed_into_relation():
    expr = prod(lift("a", const(5)), rel("R", "a"))
    simplified = simplify(expr)
    # Constants cannot become relation columns, so the binding must survive.
    assert any(isinstance(t, Lift) for t in simplified.terms)
    assert Relation("R", ("a",)) in simplified.terms


def test_equality_with_bound_side_is_hoisted_before_the_atom():
    expr = prod(rel("R", "a", "b"), cmp("a", "=", "x"))
    simplified = simplify(expr, bound=["x"])
    assert simplified == Relation("R", ("x", "b"))


def test_variable_variable_equality_unifies_atoms():
    expr = prod(rel("R", "a", "b"), rel("S", "c", "d"), cmp("b", "=", "c"))
    simplified = simplify(expr)
    text = to_string(simplified)
    assert "{" not in text  # the equality condition is gone
    assert text.count("b") >= 2 or text.count("c") >= 2  # one variable survived in both atoms


def test_unification_respects_needed_outputs():
    expr = prod(rel("R", "a", "b"), rel("S", "c", "d"), cmp("b", "=", "c"))
    simplified = simplify(expr, needed=["b", "c"])
    # Both sides are needed outputs: the equality must be preserved.
    assert "{" in to_string(simplified)


def test_multiplicative_value_factors_are_split():
    expr = prod(rel("R", "a", "b"), val(vmul("a", "b")))
    simplified = simplify(expr)
    values = [t for t in simplified.terms if isinstance(t, Value)]
    assert len(values) == 2


def test_lift_over_bound_variable_becomes_condition():
    expr = prod(lift("x", val("y")), rel("R", "a"))
    simplified = simplify(expr, bound=["x", "y"])
    assert any(isinstance(t, Cmp) for t in simplified.terms)


def test_aggsum_of_zero_collapses():
    assert simplify(agg(("a",), prod(rel("R", "a"), const(0)))) == Value(VConst(0))


def test_nested_aggsum_with_same_group_collapses():
    expr = agg(("a",), agg(("a", "b"), rel("R", "a", "b")))
    simplified = simplify(expr)
    assert to_string(simplified).count("Sum") == 1


def test_simplification_preserves_semantics_on_example():
    source = DictSource(
        relations={
            "R": GMR.from_rows([{"a": 1, "b": 2}, {"a": 2, "b": 2}]),
            "S": GMR.from_rows([{"c": 2, "d": 7}, {"c": 3, "d": 9}]),
        },
        schemas={"R": ("a", "b"), "S": ("c", "d")},
    )
    expr = agg((), prod(rel("R", "a", "b"), rel("S", "c", "d"), cmp("b", "=", "c"), val(vmul("a", "d"))))
    simplified = simplify(expr)
    evaluator = Evaluator(source)
    assert evaluator.evaluate(expr) == evaluator.evaluate(simplified)


def test_simplify_is_idempotent():
    expr = prod(rel("R", "a", "b"), cmp("a", "=", "x"), val(vmul("a", 2)))
    once = simplify(expr, bound=["x"])
    twice = simplify(once, bound=["x"])
    assert once == twice
