"""Tests for range-restriction extraction from statement bodies."""

from repro.agca.builders import cmp, lift, plus, prod, rel, val
from repro.optimizer.range_restriction import apply_key_mapping, extract_range_restrictions


def test_extracts_loop_variable_pinned_to_trigger_variable():
    expr = prod(lift("a", val("x")), rel("S", "a", "b"))
    mapping, residual = extract_range_restrictions(expr, loop_vars=["a"], bound=["x"])
    assert mapping == {"a": "x"}
    assert residual == rel("S", "x", "b")


def test_no_extraction_without_matching_lift():
    expr = prod(rel("S", "a", "b"), cmp("a", ">", "x"))
    mapping, residual = extract_range_restrictions(expr, ["a"], ["x"])
    assert mapping == {}
    assert residual == expr


def test_extraction_requires_presence_in_every_monomial():
    pinned = prod(lift("a", val("x")), rel("S", "a", "b"))
    unpinned = rel("T", "a", "b")
    mapping, residual = extract_range_restrictions(plus(pinned, unpinned), ["a"], ["x"])
    assert mapping == {}
    assert residual == plus(pinned, unpinned)


def test_extraction_across_all_monomials():
    monomial1 = prod(lift("a", val("x")), rel("S", "a", "b"))
    monomial2 = prod(lift("a", val("x")), rel("T", "a", "b"))
    mapping, residual = extract_range_restrictions(plus(monomial1, monomial2), ["a"], ["x"])
    assert mapping == {"a": "x"}
    assert residual == plus(rel("S", "x", "b"), rel("T", "x", "b"))


def test_only_listed_loop_vars_are_extracted():
    expr = prod(lift("a", val("x")), lift("b", val("y")), rel("S", "a", "b"))
    mapping, residual = extract_range_restrictions(expr, ["a"], ["x", "y"])
    assert mapping == {"a": "x"}


def test_apply_key_mapping():
    assert apply_key_mapping(("a", "b"), {"a": "x"}) == ("x", "b")
    assert apply_key_mapping((), {"a": "x"}) == ()
