"""Tests for aggregate push-down over statement bodies."""

from repro.agca.ast import AggSum, Product
from repro.agca.builders import agg, cmp, lift, mapref, prod, rel, val
from repro.agca.evaluator import DictSource, Evaluator
from repro.core.gmr import GMR
from repro.optimizer.pushdown import push_aggregates


def test_disconnected_groups_get_their_own_aggregation():
    expr = prod(mapref("MB", "bv"), mapref("MA", "av"))
    pushed = push_aggregates(expr, keep=[])
    assert isinstance(pushed, Product)
    assert all(isinstance(t, AggSum) and t.group == () for t in pushed.terms)


def test_groups_sharing_only_keep_variables_stay_unwrapped():
    expr = prod(mapref("M1", "k", "a"), mapref("M2", "k", "b"))
    pushed = push_aggregates(expr, keep=["k", "a", "b"])
    assert pushed == expr


def test_connected_factors_stay_together():
    expr = prod(mapref("MB", "bv"), cmp("bv", ">", "limit"), lift("limit", agg((), mapref("MT"))))
    pushed = push_aggregates(expr, keep=[])
    # Everything is connected through bv/limit: a single group, so there is no
    # cross product to avoid and the expression is left as-is.
    assert pushed == expr


def test_pushdown_preserves_semantics():
    maps = {
        "MB": GMR([(r, m) for r, m in ((GMR.from_rows([{"bv": 1}]).rows().__next__(), 0),)]),
    }
    source = DictSource(
        maps={
            "MB": GMR([({"bv": 10}, 2), ({"bv": 20}, 3)]),
            "MA": GMR([({"av": 1}, 5), ({"av": 2}, 7)]),
        },
        schemas={"MB": ("bv",), "MA": ("av",)},
    )
    expr = prod(mapref("MB", "bv"), mapref("MA", "av"))
    pushed = push_aggregates(expr, keep=[])
    evaluator = Evaluator(source)
    assert (
        evaluator.evaluate(expr).total_multiplicity()
        == evaluator.evaluate(pushed).total_multiplicity()
        == (2 + 3) * (5 + 7)
    )


def test_pushdown_keeps_group_keys():
    expr = prod(mapref("M1", "k", "a"), mapref("M2", "b"))
    pushed = push_aggregates(expr, keep=["k"])
    assert isinstance(pushed, Product)
    groups = [t for t in pushed.terms if isinstance(t, AggSum)]
    assert any(t.group == ("k",) for t in groups)
    assert any(t.group == () for t in groups)


def test_pushdown_inside_existing_aggsum():
    expr = agg(("k",), prod(mapref("M1", "k", "a"), mapref("M2", "b")))
    pushed = push_aggregates(expr, keep=[])
    assert isinstance(pushed, AggSum) and pushed.group == ("k",)
