"""CompiledEngine == IncrementalEngine — values *and* types, every workload.

The compiled engine's contract is bit-identity with the interpreter: same
keys, same values, same Python types, deletions included, regardless of how
many statements compiled versus fell back.  One parametrized suite pins that
across every TPC-H / finance / MDDB query in the tree, plus targeted tests
for forced interpreter fallback, checkpoint/restore recompilation and the
service integration.
"""

import inspect
import pickle

import pytest

import repro.codegen.statement as statement_module
from repro.codegen import CompiledEngine
from repro.compiler.hoivm import compile_query
from repro.runtime.engine import IncrementalEngine
from repro.runtime.protocol import EngineProtocol
from repro.workloads import all_workloads, workload

ALL_QUERIES = tuple(sorted(all_workloads()))


def _stream(spec):
    parameters = inspect.signature(spec.stream_factory).parameters
    if "max_live_orders" in parameters:
        # A small live working set forces delete events inside the window.
        return list(spec.stream_factory(events=260, max_live_orders=20))
    return list(spec.stream_factory(events=140))


def _build_case(name):
    spec = workload(name)
    translated = spec.query_factory()
    program = compile_query(
        translated.roots(),
        translated.schemas(),
        static_relations=translated.static_relations(),
    )
    return spec, translated, program, _stream(spec)


def _views(engine, translated, spec, program, events):
    for relation, rows in spec.static_tables().items():
        if relation in program.static_relations:
            engine.load_static(relation, rows)
    for event in events:
        engine.apply(event)
    return {root: engine.result_dict(root) for root in translated.roots()}


def _assert_bit_identical(expected, got, context):
    for root, want in expected.items():
        have = got[root]
        assert set(want) == set(have), f"{context}/{root}: key sets differ"
        for key, value in want.items():
            other = have[key]
            assert value == other and type(value) is type(other), (
                f"{context}/{root} at {key}: {other!r} ({type(other).__name__}) "
                f"!= {value!r} ({type(value).__name__})"
            )


@pytest.fixture(scope="module")
def cases():
    cache = {}

    def get(name):
        if name not in cache:
            spec, translated, program, events = _build_case(name)
            expected = _views(
                IncrementalEngine(program), translated, spec, program, events
            )
            cache[name] = (spec, translated, program, events, expected)
        return cache[name]

    return get


@pytest.mark.parametrize("query_name", ALL_QUERIES)
def test_compiled_engine_matches_interpreter_bit_identically(cases, query_name):
    spec, translated, program, events, expected = cases(query_name)
    engine = CompiledEngine(program)
    got = _views(engine, translated, spec, program, events)
    _assert_bit_identical(expected, got, f"{query_name}/compiled")
    stats = engine.statistics()["codegen"]
    assert stats["compiled_statements"] + stats["fallback_statements"] >= 0


def test_streams_used_here_contain_deletes():
    spec = workload("Q1")
    assert any(event.sign < 0 for event in _stream(spec))


def test_linear_tpch_views_compile_fully(cases):
    """The headline queries must run entirely on generated code."""
    for name in ("Q1", "Q3", "Q6"):
        _, _, program, _, _ = cases(name)
        engine = CompiledEngine(program)
        stats = engine.codegen.codegen_statistics()
        assert stats["fallback_statements"] == 0, stats["fallbacks"]
        assert stats["compiled_statements"] > 0


def test_forced_full_fallback_is_still_identical(cases, monkeypatch):
    """With compilation disabled entirely, the engine degrades to the interpreter."""
    spec, translated, program, events, expected = cases("Q3")
    monkeypatch.setattr(
        statement_module, "try_compile_statement", lambda statement, program: None
    )
    engine = CompiledEngine(program)
    stats = engine.codegen.codegen_statistics()
    assert stats["compiled_statements"] == 0
    got = _views(engine, translated, spec, program, events)
    _assert_bit_identical(expected, got, "Q3/forced-fallback")


@pytest.mark.parametrize("query_name", ("Q1", "Q3", "VWAP"))
def test_forced_per_statement_fallback_is_identical(cases, monkeypatch, query_name):
    """Mixing compiled and interpreted statements inside one trigger is safe.

    Every other statement is forced onto the interpreter, so compiled and
    fallback statements interleave within each trigger in statement order.
    """
    spec, translated, program, events, expected = cases(query_name)
    original = statement_module.try_compile_statement
    toggle = {"count": 0}

    def every_other(statement, program):
        toggle["count"] += 1
        if toggle["count"] % 2 == 0:
            return None
        return original(statement, program)

    monkeypatch.setattr(statement_module, "try_compile_statement", every_other)
    engine = CompiledEngine(program)
    got = _views(engine, translated, spec, program, events)
    _assert_bit_identical(expected, got, f"{query_name}/per-statement-fallback")


def test_compiled_engine_implements_the_protocol(cases):
    _, _, program, _, _ = cases("Q1")
    assert isinstance(CompiledEngine(program), EngineProtocol)


def test_wrong_arity_events_raise_like_the_interpreter(cases):
    """Compiled runners index positionally; malformed events must still raise."""
    from repro.delta.events import StreamEvent

    spec, _, program, events, _ = cases("Q1")
    lineitem = next(e for e in events if e.relation == "Lineitem")
    bad = StreamEvent(lineitem.relation, lineitem.values + ("extra",), lineitem.sign)
    for engine in (IncrementalEngine(program), CompiledEngine(program)):
        with pytest.raises(ValueError, match="arity"):
            engine.apply(bad)
        assert engine.events_processed == 0


def test_checkpoint_restore_recompiles_and_continues(cases):
    spec, translated, program, events, _ = cases("Q3")
    engine = CompiledEngine(program)
    for relation, rows in spec.static_tables().items():
        if relation in program.static_relations:
            engine.load_static(relation, rows)
    head, tail = events[:150], events[150:]
    for event in head:
        engine.apply(event)
    state = engine.checkpoint_state()

    # State round-trips through pickle and carries no code objects: every
    # leaf is a plain value, so a restored engine must recompile, not unpickle
    # kernels.
    import types

    def assert_plain(value):
        assert not isinstance(value, (types.CodeType, types.FunctionType))
        if isinstance(value, dict):
            for inner in value.values():
                assert_plain(inner)
        elif isinstance(value, (list, tuple)):
            for inner in value:
                assert_plain(inner)

    assert_plain(state)
    state = pickle.loads(pickle.dumps(state))

    fresh = CompiledEngine(program)
    fresh.restore_state(state)
    assert fresh.events_processed == engine.events_processed
    for event in tail:
        engine.apply(event)
        fresh.apply(event)
    for root in translated.roots():
        _assert_bit_identical(
            {root: engine.result_dict(root)},
            {root: fresh.result_dict(root)},
            "Q3/restore",
        )


def test_states_are_interchangeable_with_the_interpreted_engine(cases):
    spec, translated, program, events, expected = cases("Q1")
    interpreted = IncrementalEngine(program)
    _views(interpreted, translated, spec, program, events)
    state = interpreted.checkpoint_state()
    assert state["kind"] == "single"
    compiled = CompiledEngine(program)
    compiled.restore_state(state)
    got = {root: compiled.result_dict(root) for root in translated.roots()}
    _assert_bit_identical(expected, got, "Q1/cross-restore")


def test_describe_and_statistics_surface_codegen(cases):
    _, _, program, _, _ = cases("VWAP")
    engine = CompiledEngine(program)
    description = engine.describe()
    assert program.pretty() in description
    assert "codegen" in description
    stats = engine.statistics()["codegen"]
    # Since the nested-aggregate lowering, VWAP compiles fully — its :=
    # re-evaluation statements included.
    assert stats["fallback_statements"] == 0
    assert stats["compiled_statements"] > 0
    assert not stats["fallbacks"]


def test_service_hosts_the_compiled_engine(cases):
    from repro.service.core import ViewService, engine_for_mode

    spec, translated, program, events, expected = cases("Q1")
    service = ViewService(engine_for_mode(program, mode="compiled"))
    try:
        for relation, rows in spec.static_tables().items():
            if relation in program.static_relations:
                service.load_static(relation, rows)
        service.ingest(events)
        root = next(iter(translated.roots()))
        snapshot = service.query(root)
        assert snapshot.version == len(events)
        _assert_bit_identical(
            {root: expected[root]}, {root: snapshot.entries}, "Q1/service"
        )
    finally:
        service.close()
