"""Unit tests for the statement compiler: lowering, capability check, kernels."""

import pytest

from repro.agca.ast import (
    AggSum,
    Cmp,
    Exists,
    Lift,
    MapRef,
    Product,
    Relation,
    Sum,
    Value,
    VArith,
    VConst,
    VFunc,
    VVar,
)
from repro.codegen.statement import compile_scalar_kernel, try_compile_statement
from repro.compiler.program import (
    ASSIGN,
    INCREMENT,
    MapDeclaration,
    Statement,
    Trigger,
    TriggerProgram,
)
from repro.delta.events import TriggerEvent
from repro.runtime.database import Database
from repro.runtime.maps import MapStore


def make_program(statements, maps, schemas, streams=("R",), statics=()):
    triggers = {}
    for stmt in statements:
        trigger = triggers.setdefault(
            stmt.event.name, Trigger(stmt.event.relation, stmt.event.sign)
        )
        trigger.statements.append(stmt)
    return TriggerProgram(
        roots={name: name for name in maps},
        maps=maps,
        triggers=triggers,
        schemas=dict(schemas),
        stream_relations=tuple(streams),
        static_relations=tuple(statics),
    )


@pytest.fixture()
def simple():
    """One stream relation R(a, b), a scalar target and a keyed map to probe."""
    event = TriggerEvent("R", 1, ("a", "b"), ("r_a", "r_b"))
    maps = {
        "T": MapDeclaration("T", ("k",), Relation("R", ("k", "b"))),
        "M": MapDeclaration("M", ("x",), Relation("R", ("x", "b"))),
    }
    schemas = {"R": ("a", "b")}
    return event, maps, schemas


def run_statement(statement, program, values, maps=None):
    store = maps if maps is not None else MapStore()
    for decl in program.maps.values():
        store.declare(decl.name, decl.keys)
    kernel = try_compile_statement(statement, program)
    assert kernel is not None
    runner = kernel.bind(store, Database())
    runner(tuple(values), 1)
    return store, kernel


def test_scalar_statement_compiles_and_filters(simple):
    event, maps, schemas = simple
    stmt = Statement(
        target="T",
        target_keys=("r_a",),
        operation=INCREMENT,
        expr=Product((Cmp(VVar("r_b"), ">", VConst(10)), Value(VVar("r_b")))),
        event=event,
    )
    program = make_program([stmt], maps, schemas)
    store, kernel = run_statement(stmt, program, (7, 42))
    assert store.table("T").get((7,)) == 42
    # The generated source is straight-line Python over the event values.
    assert "_values[1]" in kernel.source
    # A filtered event contributes nothing.
    runner = kernel.bind(store, Database())
    runner((7, 3), 1)
    assert store.table("T").get((7,)) == 42


def test_scale_multiplies_after_the_factors(simple):
    event, maps, schemas = simple
    stmt = Statement(
        target="T",
        target_keys=("r_a",),
        operation=INCREMENT,
        expr=Value(VVar("r_b")),
        event=event,
    )
    program = make_program([stmt], maps, schemas)
    store = MapStore()
    for decl in program.maps.values():
        store.declare(decl.name, decl.keys)
    kernel = try_compile_statement(stmt, program)
    runner = kernel.bind(store, Database())
    runner((1, 5), 3)
    assert store.table("T").get((1,)) == 15


def test_bound_map_probe_and_partial_scan(simple):
    event, maps, schemas = simple
    # T[r_a] += M[r_a]: fully bound probe.
    probe = Statement(
        target="T",
        target_keys=("r_a",),
        operation=INCREMENT,
        expr=MapRef("M", ("r_a",)),
        event=event,
    )
    program = make_program([probe], maps, schemas)
    store = MapStore()
    for decl in program.maps.values():
        store.declare(decl.name, decl.keys)
    store.table("M").add((1,), 11)
    kernel = try_compile_statement(probe, program)
    assert ".primary.get(" in kernel.source
    runner = kernel.bind(store, Database())
    runner((1, 0), 1)
    runner((2, 0), 1)  # absent key: no contribution
    assert dict((tuple(k[c] for c in ("k",)), v) for k, v in store.table("T").items()) == {
        (1,): 11
    }


def test_foreach_statement_scans_and_loops(simple):
    event, maps, schemas = simple
    two = {
        "T2": MapDeclaration("T2", ("k",), Relation("R", ("k", "b"))),
        "M2": MapDeclaration("M2", ("x", "y"), Relation("R", ("x", "y"))),
    }
    # foreach y: T2[y] += M2[r_a, y] * r_b — partial binding on the first key.
    stmt = Statement(
        target="T2",
        target_keys=("y",),
        operation=INCREMENT,
        expr=Product((MapRef("M2", ("r_a", "y")), Value(VVar("r_b")))),
        event=event,
    )
    program = make_program([stmt], two, schemas)
    store = MapStore()
    for decl in program.maps.values():
        store.declare(decl.name, decl.keys)
    store.table("M2").add((1, 10), 2)
    store.table("M2").add((1, 20), 3)
    store.table("M2").add((9, 30), 5)
    kernel = try_compile_statement(stmt, program)
    assert ".index_for(" in kernel.source
    runner = kernel.bind(store, Database())
    runner((1, 100), 1)
    got = {k["k"]: v for k, v in store.table("T2").items()}
    assert got == {10: 200, 20: 300}


def test_repeated_unbound_variable_is_a_diagonal_equality(simple):
    event, maps, schemas = simple
    two = {
        "T2": MapDeclaration("T2", ("k",), Relation("R", ("k", "b"))),
        "M2": MapDeclaration("M2", ("x", "y"), Relation("R", ("x", "y"))),
    }
    # T2[y] += M2[y, y]: the repeat is an in-row equality check, not a probe.
    stmt = Statement(
        target="T2",
        target_keys=("y",),
        operation=INCREMENT,
        expr=MapRef("M2", ("y", "y")),
        event=event,
    )
    program = make_program([stmt], two, schemas)
    store = MapStore()
    for decl in program.maps.values():
        store.declare(decl.name, decl.keys)
    store.table("M2").add((1, 1), 2)
    store.table("M2").add((1, 5), 3)
    store.table("M2").add((7, 7), 4)
    kernel = try_compile_statement(stmt, program)
    assert kernel is not None
    runner = kernel.bind(store, Database())
    runner((0, 0), 1)
    assert {k["k"]: v for k, v in store.table("T2").items()} == {1: 2, 7: 4}


def test_repeated_bound_variable_probes_both_columns(simple):
    event, maps, schemas = simple
    two = {
        "T2": MapDeclaration("T2", ("k",), Relation("R", ("k", "b"))),
        "M2": MapDeclaration("M2", ("x", "y"), Relation("R", ("x", "y"))),
    }
    # T2[r_a] += M2[r_a, r_a]: both key columns pin to the trigger variable.
    stmt = Statement(
        target="T2",
        target_keys=("r_a",),
        operation=INCREMENT,
        expr=MapRef("M2", ("r_a", "r_a")),
        event=event,
    )
    program = make_program([stmt], two, schemas)
    store = MapStore()
    for decl in program.maps.values():
        store.declare(decl.name, decl.keys)
    store.table("M2").add((1, 1), 2)
    store.table("M2").add((1, 5), 3)
    kernel = try_compile_statement(stmt, program)
    runner = kernel.bind(store, Database())
    runner((1, 0), 1)
    runner((5, 0), 1)
    assert {k["k"]: v for k, v in store.table("T2").items()} == {1: 2}


def test_trigger_var_conditions_hoist_above_scans(simple):
    event, maps, schemas = simple
    two = {
        "T2": MapDeclaration("T2", ("k",), Relation("R", ("k", "b"))),
        "M2": MapDeclaration("M2", ("x", "y"), Relation("R", ("x", "y"))),
    }
    # The condition only reads trigger variables, but appears after the scan
    # in term order: the compiler must check it before opening the loop.
    stmt = Statement(
        target="T2",
        target_keys=("y",),
        operation=INCREMENT,
        expr=Product((MapRef("M2", ("r_a", "y")), Cmp(VVar("r_b"), ">", VConst(0)))),
        event=event,
    )
    program = make_program([stmt], two, schemas)
    kernel = try_compile_statement(stmt, program)
    source = kernel.source
    assert source.index("if not (_v1 > 0):") < source.index("for ")


@pytest.mark.parametrize(
    "expr",
    [
        Value(VFunc("listmax", (VConst(1), VVar("r_b")))),       # external function
        Product((Value(VVar("unbound_var")),)),                  # unbound variable
        Lift("z", AggSum(("r_a",), Value(VVar("r_b")))),         # lift over grouped agg
        Product((Product((Value(VVar("r_b")),)),)),              # nested product
    ],
)
def test_unsupported_constructs_fall_back(simple, expr):
    event, maps, schemas = simple
    stmt = Statement(
        target="T", target_keys=(), operation=INCREMENT, expr=expr, event=event
    )
    maps = {"T": MapDeclaration("T", (), Relation("R", ("a", "b")))}
    assert try_compile_statement(stmt, make_program([stmt], maps, schemas)) is None


def test_assign_statements_compile(simple):
    # := statements lower to evaluate-group-replace kernels since the
    # nested-aggregate era; the compiled source must end in a replace call.
    event, maps, schemas = simple
    stmt = Statement(
        target="T",
        target_keys=("r_a",),
        operation=ASSIGN,
        expr=Value(VVar("r_b")),
        event=event,
    )
    kernel = try_compile_statement(stmt, make_program([stmt], maps, schemas))
    assert kernel is not None
    assert ".replace(_asn" in kernel.source and ".items())" in kernel.source


def test_division_uses_zero_denominator_semantics(simple):
    event, maps, schemas = simple
    stmt = Statement(
        target="T",
        target_keys=("r_a",),
        operation=INCREMENT,
        expr=Value(VArith("/", VConst(10), VVar("r_b"))),
        event=event,
    )
    program = make_program([stmt], maps, schemas)
    store, _ = run_statement(stmt, program, (1, 4))
    assert store.table("T").get((1,)) == 2.5
    # Division by zero yields 0 (and a zero delta adds nothing).
    kernel = try_compile_statement(stmt, program)
    runner = kernel.bind(store, Database())
    runner((2, 0), 1)
    assert store.table("T").get((2,)) == 0


# ---------------------------------------------------------------------------
# The batched scalar fast path reuses the same lowering
# ---------------------------------------------------------------------------


def test_scalar_kernel_folds_items(simple):
    event, maps, schemas = simple
    stmt = Statement(
        target="T",
        target_keys=("r_a",),
        operation=INCREMENT,
        expr=Product((Cmp(VVar("r_b"), ">=", VConst(0)), Value(VVar("r_b")))),
        event=event,
    )
    kernel = compile_scalar_kernel(stmt, columns=("k",))
    assert kernel is not None
    assert "def _kernel(_table, _items):" in kernel.source
    from repro.runtime.maps import IndexedTable

    table = IndexedTable(("k",))
    kernel(table, [((1, 5), 2), ((1, -3), 7), ((2, 4), 1)])
    assert {tuple(k[c] for c in ("k",)): v for k, v in table.items()} == {
        (1,): 10,
        (2,): 4,
    }


def test_scalar_kernel_allows_external_functions(simple):
    event, maps, schemas = simple
    stmt = Statement(
        target="T",
        target_keys=("r_a",),
        operation=INCREMENT,
        expr=Value(VFunc("listmax", (VConst(1), VVar("r_b")))),
        event=event,
    )
    kernel = compile_scalar_kernel(stmt, columns=("k",))
    assert kernel is not None
    from repro.runtime.maps import IndexedTable

    table = IndexedTable(("k",))
    kernel(table, [((1, 7), 1), ((2, -5), 1)])
    assert {tuple(k[c] for c in ("k",)): v for k, v in table.items()} == {
        (1,): 7,
        (2,): 1,
    }


def test_scalar_kernel_keeps_term_order_short_circuit(simple):
    """A zero value factor must skip later terms, exactly like the evaluator.

    The comparison after the zero factor is ill-typed for the data (number
    versus string ordering); the interpreter never evaluates it because the
    zero factor empties the result first, and neither may the kernel.
    """
    event, maps, schemas = simple
    stmt = Statement(
        target="T",
        target_keys=("r_a",),
        operation=INCREMENT,
        expr=Product((
            Value(VArith("-", VVar("r_b"), VVar("r_b"))),   # always 0
            Cmp(VVar("r_b"), "<", VConst("s")),             # ill-typed for ints
        )),
        event=event,
    )
    kernel = compile_scalar_kernel(stmt, columns=("k",))
    assert kernel is not None
    from repro.runtime.maps import IndexedTable

    table = IndexedTable(("k",))
    kernel(table, [((1, 3), 1)])  # must not raise TypeError
    assert len(table) == 0


def test_scalar_kernel_rejects_map_reads(simple):
    event, maps, schemas = simple
    stmt = Statement(
        target="T",
        target_keys=("r_a",),
        operation=INCREMENT,
        expr=MapRef("M", ("r_a",)),
        event=event,
    )
    assert compile_scalar_kernel(stmt, columns=("k",)) is None
