"""Whole-trigger fusion: bit-identity, dedup soundness, bind caching.

The fused engine's contract is the same as the per-statement compiled
engine's: bit-identity with the interpreter — values *and* types, deletions
included — on every workload.  This suite pins fused vs per-statement vs
interpreted across the tree, checkpoint/restore mid-stream (including
cross-restores from interpreted states and the multiprocessing partitioned
backend recompiling fused kernels from pickled programs), plus targeted
tests for the fusion mechanics: cross-statement dedup, its write-ordering
safety rule, common-guard hoisting, and per-database bind caching.
"""

import inspect
import pickle

import pytest

from repro.agca.ast import Cmp, MapRef, Product, Relation, Sum, Value, VArith, VConst, VVar
from repro.codegen import CompiledEngine, try_fuse_trigger
from repro.compiler.hoivm import compile_query
from repro.compiler.program import (
    INCREMENT,
    MapDeclaration,
    Statement,
    Trigger,
    TriggerProgram,
)
from repro.delta.events import StreamEvent, TriggerEvent
from repro.runtime.engine import IncrementalEngine
from repro.workloads import all_workloads, workload

ALL_QUERIES = tuple(sorted(all_workloads()))


def _stream(spec):
    parameters = inspect.signature(spec.stream_factory).parameters
    if "max_live_orders" in parameters:
        return list(spec.stream_factory(events=220, max_live_orders=20))
    return list(spec.stream_factory(events=130))


def _build_case(name):
    spec = workload(name)
    translated = spec.query_factory()
    program = compile_query(
        translated.roots(),
        translated.schemas(),
        static_relations=translated.static_relations(),
    )
    return spec, translated, program, _stream(spec)


def _views(engine, translated, spec, program, events):
    for relation, rows in spec.static_tables().items():
        if relation in program.static_relations:
            engine.load_static(relation, rows)
    for event in events:
        engine.apply(event)
    return {root: engine.result_dict(root) for root in translated.roots()}


def _assert_bit_identical(expected, got, context):
    for root, want in expected.items():
        have = got[root]
        assert set(want) == set(have), f"{context}/{root}: key sets differ"
        for key, value in want.items():
            other = have[key]
            assert value == other and type(value) is type(other), (
                f"{context}/{root} at {key}: {other!r} ({type(other).__name__}) "
                f"!= {value!r} ({type(value).__name__})"
            )


@pytest.fixture(scope="module")
def cases():
    cache = {}

    def get(name):
        if name not in cache:
            spec, translated, program, events = _build_case(name)
            expected = _views(
                IncrementalEngine(program), translated, spec, program, events
            )
            cache[name] = (spec, translated, program, events, expected)
        return cache[name]

    return get


# ---------------------------------------------------------------------------
# The property: fused == per-statement == interpreted, on every workload
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("query_name", ALL_QUERIES)
def test_fused_and_per_statement_match_interpreter(cases, query_name):
    spec, translated, program, events, expected = cases(query_name)
    fused = CompiledEngine(program, fuse=True)
    got_fused = _views(fused, translated, spec, program, events)
    _assert_bit_identical(expected, got_fused, f"{query_name}/fused")

    unfused = CompiledEngine(program, fuse=False)
    got_unfused = _views(unfused, translated, spec, program, events)
    _assert_bit_identical(expected, got_unfused, f"{query_name}/per-statement")

    stats = fused.statistics()["codegen"]
    unfused_stats = unfused.statistics()["codegen"]
    assert unfused_stats["fused_kernels"] == 0
    if stats["fallback_statements"] == 0 and stats["compiled_statements"] > 0:
        # A fully-compiled program must fuse every trigger that has statements.
        populated = sum(
            1 for trigger in program.triggers.values() if trigger.statements
        )
        assert stats["fused_kernels"] == populated
        assert stats["fused_statements"] == stats["compiled_statements"]


def test_every_fully_compiled_trigger_fuses(cases):
    """Fusion covers every trigger whose statements all compile.

    The headline workloads (TPC-H linear views, all six financial queries)
    compile with zero fallbacks, so there fusion must be total; MDDB keeps
    its pre-existing interpreter fallback statements, and those triggers
    stay on per-statement dispatch.
    """
    for name in ALL_QUERIES:
        _, _, program, _, _ = cases(name)
        engine = CompiledEngine(program)
        executor = engine.codegen
        expected_fused = sum(
            1
            for trigger in program.triggers.values()
            if trigger.statements
            and all(executor.kernel_for(s) is not None for s in trigger.statements)
        )
        stats = executor.codegen_statistics()
        assert stats["fused_kernels"] == expected_fused, name


def test_headline_workloads_fuse_with_zero_fallbacks(cases):
    for name in ("Q1", "Q3", "Q6", "AXF", "BSP", "BSV", "MST", "PSP", "VWAP"):
        _, _, program, _, _ = cases(name)
        engine = CompiledEngine(program)
        stats = engine.codegen.codegen_statistics()
        assert stats["fallback_statements"] == 0, (name, stats["fallbacks"])
        populated = sum(
            1 for trigger in program.triggers.values() if trigger.statements
        )
        assert stats["fused_kernels"] == populated, name


# ---------------------------------------------------------------------------
# Checkpoint / restore with fused kernels
# ---------------------------------------------------------------------------


def test_restore_mid_stream_continues_bit_identically(cases):
    spec, translated, program, events, _ = cases("Q3")
    engine = CompiledEngine(program)
    for relation, rows in spec.static_tables().items():
        if relation in program.static_relations:
            engine.load_static(relation, rows)
    head, tail = events[:70], events[70:]
    for event in head:
        engine.apply(event)
    state = pickle.loads(pickle.dumps(engine.checkpoint_state()))

    fresh = CompiledEngine(program)
    fresh.restore_state(state)
    for event in tail:
        engine.apply(event)
        fresh.apply(event)
    for root in translated.roots():
        _assert_bit_identical(
            {root: engine.result_dict(root)},
            {root: fresh.result_dict(root)},
            "Q3/fused-restore",
        )


def test_interpreted_state_restores_into_fused_engine(cases):
    spec, translated, program, events, expected = cases("VWAP")
    interpreted = IncrementalEngine(program)
    _views(interpreted, translated, spec, program, events)
    compiled = CompiledEngine(program)
    compiled.restore_state(interpreted.checkpoint_state())
    got = {root: compiled.result_dict(root) for root in translated.roots()}
    _assert_bit_identical(expected, got, "VWAP/cross-restore")


def test_process_backend_recompiles_fused_kernels(cases):
    """Workers rebuild fused engines from the pickled program, mid-restore too."""
    from repro.exec import PartitionedEngine

    spec, translated, program, events, expected = cases("Q3")
    engine = PartitionedEngine(
        program, partitions=2, backend="process", compiled=True
    )
    try:
        got = _views(engine, translated, spec, program, events)
        _assert_bit_identical(expected, got, "Q3/process-fused")
        state = pickle.loads(pickle.dumps(engine.checkpoint_state()))
    finally:
        engine.close()

    restored = PartitionedEngine(
        program, partitions=2, backend="process", compiled=True
    )
    try:
        restored.restore_state(state)
        got = {root: restored.result_dict(root) for root in translated.roots()}
        _assert_bit_identical(expected, got, "Q3/process-fused-restore")
    finally:
        restored.close()


# ---------------------------------------------------------------------------
# Fusion mechanics on hand-built programs
# ---------------------------------------------------------------------------


def make_program(statements, maps, schemas, streams=("R",)):
    triggers = {}
    for stmt in statements:
        trigger = triggers.setdefault(
            stmt.event.name, Trigger(stmt.event.relation, stmt.event.sign)
        )
        trigger.statements.append(stmt)
    return TriggerProgram(
        roots={name: name for name in maps},
        maps=maps,
        triggers=triggers,
        schemas=dict(schemas),
        stream_relations=tuple(streams),
        static_relations=(),
    )


@pytest.fixture()
def two_sums():
    """Two statements sharing a condition, a value factor and the key row."""
    event = TriggerEvent("R", 1, ("a", "b"), ("r_a", "r_b"))
    maps = {
        "S1": MapDeclaration("S1", ("k",), Relation("R", ("k", "b"))),
        "S2": MapDeclaration("S2", ("k",), Relation("R", ("k", "b"))),
    }
    shared = Product((Cmp(VVar("r_b"), ">", VConst(0)), Value(VVar("r_b"))))
    statements = [
        Statement(target="S1", target_keys=("r_a",), operation=INCREMENT,
                  expr=shared, event=event),
        Statement(target="S2", target_keys=("r_a",), operation=INCREMENT,
                  expr=shared, event=event),
    ]
    return make_program(statements, maps, {"R": ("a", "b")})


def test_fused_kernel_dedups_shared_subtrees(two_sums):
    trigger = two_sums.trigger_for(1, "R")
    kernel = try_fuse_trigger(trigger, two_sums)
    assert kernel is not None
    assert kernel.fused_statements == 2
    # The condition, the normalized value and the key row each compute once.
    assert kernel.deduped_scalars >= 3
    assert kernel.source.count("_norm(_v1)") == 1
    assert kernel.source.count("_Row(") == 1
    # The shared condition guards the whole kernel exactly once.
    assert kernel.source.count("(_v1 > 0)") == 1


def test_fused_dedup_is_bit_identical(two_sums):
    fused = CompiledEngine(two_sums, fuse=True)
    unfused = CompiledEngine(two_sums, fuse=False)
    for engine in (fused, unfused):
        engine.apply(StreamEvent("R", (1, 5), 1))
        engine.apply(StreamEvent("R", (1, -2), 1))  # fails the condition
        engine.apply(StreamEvent("R", (2, 3), 1))
        engine.apply(StreamEvent("R", (1, 5), -1))
    for name in ("S1", "S2"):
        assert fused.result_dict(name) == unfused.result_dict(name)


def test_probe_does_not_dedup_across_a_write():
    """Statement 2's probe of M must see statement 1's write to M."""
    event = TriggerEvent("R", 1, ("a", "b"), ("r_a", "r_b"))
    maps = {
        "M": MapDeclaration("M", ("k",), Relation("R", ("k", "b"))),
        "T1": MapDeclaration("T1", ("k",), Relation("R", ("k", "b"))),
        "T2": MapDeclaration("T2", ("k",), Relation("R", ("k", "b"))),
    }
    statements = [
        # T1 reads M before the write, then M updates, then T2 reads M after.
        Statement(target="T1", target_keys=("r_a",), operation=INCREMENT,
                  expr=MapRef("M", ("r_a",)), event=event),
        Statement(target="M", target_keys=("r_a",), operation=INCREMENT,
                  expr=Value(VVar("r_b")), event=event),
        Statement(target="T2", target_keys=("r_a",), operation=INCREMENT,
                  expr=MapRef("M", ("r_a",)), event=event),
    ]
    program = make_program(statements, maps, {"R": ("a", "b")})
    kernel = try_fuse_trigger(program.trigger_for(1, "R"), program)
    assert kernel is not None
    assert kernel.deduped_probes == 0  # sharing would read stale state

    fused = CompiledEngine(program, fuse=True)
    unfused = CompiledEngine(program, fuse=False)
    for engine in (fused, unfused):
        engine.apply(StreamEvent("R", (7, 10), 1))
        engine.apply(StreamEvent("R", (7, 5), 1))
    for name in ("M", "T1", "T2"):
        assert fused.result_dict(name) == unfused.result_dict(name), name
    # Second event: T1 sees M from before its own write (10), T2 after (15).
    assert fused.result_dict("T1") == {(7,): 10}
    assert fused.result_dict("T2") == {(7,): 25}


def test_stale_shared_probe_still_hoists():
    """A shared probe invalidated later must keep its prefix definition.

    Statements 1 and 2 share the probe of M; statement 3 writes M, so
    statement 4's identical probe finds the cache entry stale and evicts
    it.  The already-shared definition must still hoist into the prefix —
    otherwise statement 2 reads a local defined inside statement 1's abort
    scope, and any event failing statement 1's guard crashes the kernel
    with UnboundLocalError (the bug this test pins).
    """
    event = TriggerEvent("R", 1, ("a", "b"), ("r_a", "r_b"))
    maps = {
        name: MapDeclaration(name, ("k",), Relation("R", ("k", "b")))
        for name in ("M", "T1", "T2", "T3")
    }
    statements = [
        Statement(target="T1", target_keys=("r_a",), operation=INCREMENT,
                  expr=Product((Cmp(VVar("r_b"), ">", VConst(0)),
                                MapRef("M", ("r_a",)))), event=event),
        Statement(target="T2", target_keys=("r_a",), operation=INCREMENT,
                  expr=MapRef("M", ("r_a",)), event=event),
        Statement(target="M", target_keys=("r_a",), operation=INCREMENT,
                  expr=Value(VVar("r_b")), event=event),
        Statement(target="T3", target_keys=("r_a",), operation=INCREMENT,
                  expr=MapRef("M", ("r_a",)), event=event),
    ]
    program = make_program(statements, maps, {"R": ("a", "b")})
    engines = {
        "interpreted": IncrementalEngine(program),
        "fused": CompiledEngine(program, fuse=True),
        "per-statement": CompiledEngine(program, fuse=False),
    }
    stream = [
        StreamEvent("R", (7, 4), 1),
        StreamEvent("R", (7, -3), 1),  # fails stmt 1's guard -> crash before fix
        StreamEvent("R", (7, 2), 1),
    ]
    for engine in engines.values():
        for e in stream:
            engine.apply(e)
    reference = engines["interpreted"]
    for name in ("M", "T1", "T2", "T3"):
        want = reference.result_dict(name)
        for label in ("fused", "per-statement"):
            assert engines[label].result_dict(name) == want, (name, label)


def test_hoisted_probe_drags_its_key_row_into_the_prefix():
    """A shared probe's cached key row hoists with it.

    The probe of M is shared by both statements and moves to the prefix;
    its key row — a single-use cached build — must move above it, or the
    prefix would read the row local before its definition.
    """
    event = TriggerEvent("R", 1, ("a", "b"), ("r_a", "r_b"))
    maps = {
        name: MapDeclaration(name, ("k",), Relation("R", ("k", "b")))
        for name in ("M", "T1", "T2")
    }
    statements = [
        Statement(target="T1", target_keys=("r_b",), operation=INCREMENT,
                  expr=MapRef("M", ("r_a",)), event=event),
        Statement(target="T2", target_keys=("r_b",), operation=INCREMENT,
                  expr=MapRef("M", ("r_a",)), event=event),
    ]
    program = make_program(statements, maps, {"R": ("a", "b")})
    kernel = try_fuse_trigger(program.trigger_for(1, "R"), program)
    assert kernel is not None
    assert kernel.deduped_probes == 1
    source = kernel.source
    assert source.count("_Row(") == 2  # one probe key, one sink key — each once
    row_def = source.index(" = _Row(")
    probe = source.index(".primary.get(")
    assert row_def < probe  # the dragged row defines before the hoisted probe

    fused = CompiledEngine(program, fuse=True)
    unfused = CompiledEngine(program, fuse=False)
    for engine in (fused, unfused):
        engine.apply(StreamEvent("R", (1, 9), 1))
    for name in ("T1", "T2"):
        assert fused.result_dict(name) == unfused.result_dict(name)


def test_probe_dedups_when_no_write_intervenes():
    event = TriggerEvent("R", 1, ("a", "b"), ("r_a", "r_b"))
    maps = {
        "M": MapDeclaration("M", ("k",), Relation("R", ("k", "b"))),
        "T1": MapDeclaration("T1", ("k",), Relation("R", ("k", "b"))),
        "T2": MapDeclaration("T2", ("k",), Relation("R", ("k", "b"))),
    }
    statements = [
        Statement(target="T1", target_keys=("r_a",), operation=INCREMENT,
                  expr=MapRef("M", ("r_a",)), event=event),
        Statement(target="T2", target_keys=("r_a",), operation=INCREMENT,
                  expr=MapRef("M", ("r_a",)), event=event),
    ]
    program = make_program(statements, maps, {"R": ("a", "b")})
    kernel = try_fuse_trigger(program.trigger_for(1, "R"), program)
    assert kernel is not None
    assert kernel.deduped_probes == 1
    assert kernel.source.count(".primary.get(") == 1


def test_maintained_base_relation_applies_inside_fused_kernel():
    """A self-referential trigger fuses with the base apply in sequence.

    The stream relation is read by a statement, so the database must keep
    it; the fused kernel embeds the base-table add between the increments
    and the assigns, it runs *unconditionally* (the guard shared by the two
    statements must not hoist across it), and results stay identical to
    per-statement dispatch and the interpreter — including events that fail
    the guard, whose base-relation rows later statements still observe.
    """
    event = TriggerEvent("R", 1, ("a", "b"), ("r_a", "r_b"))
    maps = {
        "T1": MapDeclaration("T1", ("k",), Relation("R", ("k", "b"))),
        "T2": MapDeclaration("T2", ("k",), Relation("R", ("k", "b"))),
    }
    guard = Cmp(VVar("r_b"), ">", VConst(0))
    statements = [
        Statement(target="T1", target_keys=("r_a",), operation=INCREMENT,
                  expr=Product((guard, Value(VVar("r_b")))), event=event),
        # Reads the stream relation itself: R must be maintained.
        Statement(target="T2", target_keys=("y",), operation=INCREMENT,
                  expr=Product((guard, Relation("R", ("y", "z")))), event=event),
    ]
    program = make_program(statements, maps, {"R": ("a", "b")})
    assert "R" in program.requires_base_relations()

    kernel = try_fuse_trigger(program.trigger_for(1, "R"), program)
    assert kernel is not None
    assert "(_values, 1)" in kernel.source  # the embedded base-table add
    # The shared guard cannot hoist to kernel top: the base apply between
    # the statements runs unconditionally, so each statement keeps its own.
    assert kernel.source.count("(_v1 > 0)") >= 1
    base_line = kernel.source.index("(_values, 1)")
    assert kernel.source.index("(_v1 > 0)") < base_line

    engines = {
        "interpreted": IncrementalEngine(program),
        "fused": CompiledEngine(program, fuse=True),
        "per-statement": CompiledEngine(program, fuse=False),
    }
    stream = [
        StreamEvent("R", (1, 5), 1),
        StreamEvent("R", (2, -3), 1),   # fails the guard; base row must persist
        StreamEvent("R", (1, 2), 1),
        StreamEvent("R", (1, 5), -1),
    ]
    for engine in engines.values():
        for e in stream:
            engine.apply(e)
    reference = engines["interpreted"]
    for name in ("T1", "T2"):
        want = reference.result_dict(name)
        for label in ("fused", "per-statement"):
            got = engines[label].result_dict(name)
            assert got == want, (name, label, got, want)
            for key, value in want.items():
                assert type(got[key]) is type(value)


def test_fusion_handles_renamed_trigger_variables():
    """Sibling statements may name the same event field differently.

    ``fresh_trigger_vars`` suffixes trigger-variable names that collide
    with a map definition, so one trigger's statements can carry e.g.
    ``(r_a, r_b)`` and ``(r_a1, r_b1)`` for the same event positions.
    Fusion keys event loads by *position*, so such triggers fuse (and the
    identical subtrees still dedup) instead of crashing engine
    construction with ValueError.
    """
    event_a = TriggerEvent("R", 1, ("a", "b"), ("r_a", "r_b"))
    event_b = TriggerEvent("R", 1, ("a", "b"), ("r_a1", "r_b1"))
    maps = {
        "S1": MapDeclaration("S1", ("k",), Relation("R", ("k", "b"))),
        "S2": MapDeclaration("S2", ("k",), Relation("R", ("k", "b"))),
    }
    statements = [
        Statement(target="S1", target_keys=("r_a",), operation=INCREMENT,
                  expr=Product((Cmp(VVar("r_b"), ">", VConst(0)),
                                Value(VVar("r_b")))), event=event_a),
        Statement(target="S2", target_keys=("r_a1",), operation=INCREMENT,
                  expr=Product((Cmp(VVar("r_b1"), ">", VConst(0)),
                                Value(VVar("r_b1")))), event=event_b),
    ]
    program = make_program(statements, maps, {"R": ("a", "b")})
    kernel = try_fuse_trigger(program.trigger_for(1, "R"), program)
    assert kernel is not None
    # Positional locals make the renamed subtrees identical -> they dedup.
    assert kernel.deduped_scalars >= 2

    engines = {
        "interpreted": IncrementalEngine(program),
        "fused": CompiledEngine(program, fuse=True),
        "per-statement": CompiledEngine(program, fuse=False),
    }
    for engine in engines.values():
        engine.apply(StreamEvent("R", (1, 5), 1))
        engine.apply(StreamEvent("R", (2, -1), 1))
    for name in ("S1", "S2"):
        want = engines["interpreted"].result_dict(name)
        for label in ("fused", "per-statement"):
            assert engines[label].result_dict(name) == want, (name, label)


def test_dead_term_reservations_are_not_reusable():
    """A zero-constant factor kills its term mid-planning; dedup entries the
    term reserved before dying must be evicted, or a later statement reuses
    a local whose defining node is never emitted (NameError at event time).
    """
    event = TriggerEvent("R", 1, ("a", "b"), ("r_a", "r_b"))
    maps = {
        "M1": MapDeclaration("M1", (), Relation("R", ("a", "b"))),
        "M2": MapDeclaration("M2", (), Relation("R", ("a", "b"))),
    }
    square = Value(VArith("*", VVar("r_b"), VVar("r_b")))
    statements = [
        # Term 1 reserves the (x*x) value, then dies on the * 0 constant.
        Statement(target="M1", target_keys=(), operation=INCREMENT,
                  expr=Sum((Product((square, Value(VConst(0)))),
                            Value(VConst(7)))), event=event),
        # This statement must not reuse the phantom local.
        Statement(target="M2", target_keys=(), operation=INCREMENT,
                  expr=square, event=event),
    ]
    program = make_program(statements, maps, {"R": ("a", "b")})
    engines = {
        "interpreted": IncrementalEngine(program),
        "fused": CompiledEngine(program, fuse=True),
        "per-statement": CompiledEngine(program, fuse=False),
    }
    for engine in engines.values():
        engine.apply(StreamEvent("R", (1, 3), 1))  # NameError before the fix
    for name in ("M1", "M2"):
        want = engines["interpreted"].result_dict(name)
        for label in ("fused", "per-statement"):
            assert engines[label].result_dict(name) == want, (name, label)


def test_fusion_skipped_when_any_statement_falls_back(cases, monkeypatch):
    import repro.codegen.statement as statement_module

    _, _, program, _, _ = cases("Q1")
    original = statement_module.try_compile_statement
    toggle = {"count": 0}

    def every_other(statement, program):
        toggle["count"] += 1
        return None if toggle["count"] % 2 == 0 else original(statement, program)

    monkeypatch.setattr(statement_module, "try_compile_statement", every_other)
    engine = CompiledEngine(program)
    stats = engine.codegen.codegen_statistics()
    assert stats["fallback_statements"] > 0
    assert stats["fused_kernels"] == 0


# ---------------------------------------------------------------------------
# Bind caching (restore must not re-exec unchanged kernels)
# ---------------------------------------------------------------------------


def test_fused_bind_caches_per_database(two_sums):
    trigger = two_sums.trigger_for(1, "R")
    kernel = try_fuse_trigger(trigger, two_sums)
    engine = CompiledEngine(two_sums)

    first = kernel.bind(engine.maps, engine.database)
    again = kernel.bind(engine.maps, engine.database)
    assert first is again  # same tables -> cached runner, no re-exec

    other = CompiledEngine(two_sums)
    different = kernel.bind(other.maps, other.database)
    assert different is not first  # different tables -> fresh link


def test_restore_reuses_fused_runners(two_sums):
    engine = CompiledEngine(two_sums)
    engine.apply(StreamEvent("R", (1, 5), 1))
    state = engine.checkpoint_state()
    runners_before = {k: r for k, (r, _) in engine.codegen._fused.items()}
    engine.restore_state(state)
    runners_after = {k: r for k, (r, _) in engine.codegen._fused.items()}
    assert runners_before == runners_after  # tables mutate in place on restore
    # ... and the reused runners still apply events correctly.
    engine.apply(StreamEvent("R", (1, 5), 1))
    assert engine.result_dict("S1") == {(1,): 10}


# ---------------------------------------------------------------------------
# The dump CLI
# ---------------------------------------------------------------------------


def test_dump_cli_prints_fused_source_and_ir_ops(capsys):
    from repro.codegen.__main__ import main

    assert main(["dump", "Q1", "--trigger", "Lineitem:+"]) == 0
    out = capsys.readouterr().out
    assert "fused kernel" in out
    assert "def _kernel(_values):" in out
    assert "IR ops:" in out
    assert "sink_add=" in out


def test_dump_cli_rejects_unknown_query(capsys):
    from repro.codegen.__main__ import main

    assert main(["dump", "definitely-not-a-query"]) == 2
    assert "unknown query" in capsys.readouterr().out


def test_dump_cli_per_statement_listing(capsys):
    from repro.codegen.__main__ import main

    assert main(["dump", "Q6", "--per-statement"]) == 0
    out = capsys.readouterr().out
    assert "def _kernel(_values, _scale):" in out  # per-statement kernels too
