"""Codegen for the former fallback classes: ``:=``, nested AggSum, Exists.

Every test pits a :class:`CompiledEngine` against an :class:`IncrementalEngine`
on the same program and stream and requires bit-identical views — values and
types — which is the compiled engine's contract.  The finance queries cover
the real-world shapes (ordered range probes, grouped aggregate factors,
assign kernels); the synthetic programs pin the corners the workloads do not
reach (Exists, equality lifts over aggregates, clearing assigns).
"""

import random

import pytest

from repro.agca.ast import (
    AggSum,
    Cmp,
    Exists,
    Lift,
    MapRef,
    Product,
    Relation,
    Sum,
    Value,
    VArith,
    VConst,
    VVar,
)
from repro.codegen import CompiledEngine
from repro.compiler.hoivm import compile_query
from repro.compiler.program import (
    ASSIGN,
    INCREMENT,
    MapDeclaration,
    Statement,
    Trigger,
    TriggerProgram,
)
from repro.delta.events import DELETE, INSERT, StreamEvent, TriggerEvent
from repro.runtime.engine import IncrementalEngine
from repro.workloads import workload

FINANCE = ("AXF", "BSP", "BSV", "MST", "PSP", "VWAP")


def _make_program(statements, maps, schemas, streams=("R",)):
    triggers = {}
    for stmt in statements:
        trigger = triggers.setdefault(
            stmt.event.name, Trigger(stmt.event.relation, stmt.event.sign)
        )
        trigger.statements.append(stmt)
    return TriggerProgram(
        roots={name: name for name in maps},
        maps=maps,
        triggers=triggers,
        schemas=dict(schemas),
        stream_relations=tuple(streams),
    )


def _assert_identical(program, events):
    interpreted = IncrementalEngine(program)
    compiled = CompiledEngine(program)
    for event in events:
        interpreted.apply(event)
        compiled.apply(event)
        for name in program.maps:
            want = interpreted.maps.table(name)
            have = compiled.maps.table(name)
            assert dict(want.items()) == dict(have.items()), name
    for name in program.maps:
        for row, value in interpreted.maps.table(name).items():
            other = compiled.maps.table(name).get(row)
            assert other == value and type(other) is type(value), (name, row)
    return compiled


def _mirrored(statements):
    """Insert statements plus their delete-trigger twins (negated deltas)."""
    out = list(statements)
    for stmt in statements:
        event = stmt.event
        delete = TriggerEvent(event.relation, -1, event.columns, event.trigger_vars)
        if stmt.operation == INCREMENT:
            inner = stmt.expr.terms if isinstance(stmt.expr, Product) else (stmt.expr,)
            expr = Product((Value(VConst(-1)),) + tuple(inner))
        else:
            expr = stmt.expr
        out.append(
            Statement(
                target=stmt.target,
                target_keys=stmt.target_keys,
                operation=stmt.operation,
                expr=expr,
                event=delete,
            )
        )
    return out


def _stream(count, seed=5, lo=0, hi=12):
    rng = random.Random(seed)
    live = []
    events = []
    for _ in range(count):
        if live and rng.random() < 0.3:
            events.append(StreamEvent("R", live.pop(rng.randrange(len(live))), DELETE))
        else:
            values = (rng.randint(lo, hi), rng.randint(1, 9))
            live.append(values)
            events.append(StreamEvent("R", values, INSERT))
    return events


@pytest.mark.parametrize("name", FINANCE)
def test_finance_queries_compile_with_zero_fallbacks(name):
    spec = workload(name)
    translated = spec.query_factory()
    program = compile_query(
        translated.roots(),
        translated.schemas(),
        static_relations=translated.static_relations(),
    )
    engine = CompiledEngine(program)
    stats = engine.codegen.codegen_statistics()
    assert stats["fallback_statements"] == 0, stats["fallbacks"]
    assert stats["compiled_statements"] == program.statement_count()


def test_vwap_assign_kernel_uses_the_range_probe():
    spec = workload("VWAP")
    translated = spec.query_factory()
    program = compile_query(
        translated.roots(),
        translated.schemas(),
        static_relations=translated.static_relations(),
    )
    engine = CompiledEngine(program)
    sources = [
        engine.codegen.kernel_for(stmt).source
        for stmt in program.statements()
        if stmt.operation == ASSIGN
    ]
    assert sources and all(".range_sum" in source for source in sources)
    # The probes actually fire: after a stream, the guarded map's ordered
    # index reports probe traffic with zero exact-regime scan fallbacks.
    for event in spec.stream_factory(events=200):
        engine.apply(event)
    stats = engine.maps.table("M3").ordered_index_stats()["b2_price"]
    assert stats["probes"] > 0 and stats["scan_fallbacks"] == 0


EVENT = TriggerEvent("R", 1, ("a", "b"), ("r_a", "r_b"))
SCHEMAS = {"R": ("a", "b")}


def test_exists_factor_compiles_and_matches():
    maps = {
        "M": MapDeclaration("M", ("p",), Relation("R", ("p", "b"))),
        "T": MapDeclaration("T", (), Relation("R", ("a", "b"))),
    }
    statements = _mirrored(
        [
            Statement(
                target="T",
                target_keys=(),
                operation=INCREMENT,
                expr=Product(
                    (
                        Value(VVar("r_a")),
                        Exists(
                            Product(
                                (MapRef("M", ("p",)), Cmp(VVar("p"), ">", VVar("r_b")))
                            )
                        ),
                    )
                ),
                event=EVENT,
            ),
            Statement(
                target="M",
                target_keys=("r_a",),
                operation=INCREMENT,
                expr=Value(VVar("r_b")),
                event=EVENT,
            ),
        ]
    )
    program = _make_program(statements, maps, SCHEMAS)
    compiled = _assert_identical(program, _stream(400))
    stats = compiled.codegen.codegen_statistics()
    assert stats["fallback_statements"] == 0


def test_lift_over_aggregate_binds_and_checks_equality():
    # z is lifted from a nested aggregate twice: once binding, once as an
    # equality check against an already-bound variable (the trigger's r_a).
    maps = {
        "M": MapDeclaration("M", ("p",), Relation("R", ("p", "b"))),
        "T": MapDeclaration("T", (), Relation("R", ("a", "b"))),
    }
    nested = AggSum((), Product((MapRef("M", ("p",)), Cmp(VVar("p"), ">=", VVar("r_b")))))
    statements = _mirrored(
        [
            Statement(
                target="T",
                target_keys=(),
                operation=INCREMENT,
                expr=Product((Lift("z", nested), Value(VArith("+", VVar("z"), VConst(1))))),
                event=EVENT,
            ),
            Statement(
                target="T",
                target_keys=(),
                operation=INCREMENT,
                expr=Product((Lift("r_a", nested),)),  # equality gate on r_a
                event=EVENT,
            ),
            Statement(
                target="M",
                target_keys=("r_a",),
                operation=INCREMENT,
                expr=Value(VConst(1)),
                event=EVENT,
            ),
        ]
    )
    program = _make_program(statements, maps, SCHEMAS)
    compiled = _assert_identical(program, _stream(400))
    assert compiled.codegen.codegen_statistics()["fallback_statements"] == 0


def test_assign_with_no_matches_clears_the_target():
    maps = {
        "M": MapDeclaration("M", ("p",), Relation("R", ("p", "b"))),
        "T": MapDeclaration("T", ("p",), Relation("R", ("p", "b"))),
    }
    statements = _mirrored(
        [
            Statement(
                target="M",
                target_keys=("r_a",),
                operation=INCREMENT,
                expr=Value(VVar("r_b")),
                event=EVENT,
            ),
            Statement(
                target="T",
                target_keys=("p",),
                operation=ASSIGN,
                expr=Product((MapRef("M", ("p",)), Cmp(VVar("p"), ">", VVar("r_b")))),
                event=EVENT,
            ),
        ]
    )
    program = _make_program(statements, maps, SCHEMAS)
    compiled = _assert_identical(program, _stream(400))
    assert compiled.codegen.codegen_statistics()["fallback_statements"] == 0
    # Drive an event whose guard matches nothing: the re-evaluation must
    # clear T in both engines (covered by _assert_identical), and T must be
    # empty when the guard excludes every price.
    big = StreamEvent("R", (0, 999), INSERT)
    compiled.apply(big)
    assert len(compiled.maps.table("T")) == 0


def test_sum_of_grouped_aggregates_in_assign():
    # The MST shape, miniaturized: a := statement whose terms multiply a
    # grouped aggregate with a scalar aggregate.
    maps = {
        "M": MapDeclaration("M", ("g", "p"), Relation("R", ("g", "p"))),
        "N": MapDeclaration("N", ("q",), Relation("R", ("q", "b"))),
        "T": MapDeclaration("T", ("g",), Relation("R", ("g", "b"))),
    }
    grouped = AggSum(
        ("g",),
        Product((MapRef("M", ("g", "p")), Cmp(VVar("p"), ">", VConst(3)))),
    )
    scalar = AggSum((), Product((MapRef("N", ("q",)), Cmp(VVar("q"), "<=", VConst(6)))))
    statements = _mirrored(
        [
            Statement(
                target="M",
                target_keys=("r_a", "r_b"),
                operation=INCREMENT,
                expr=Value(VConst(1)),
                event=EVENT,
            ),
            Statement(
                target="N",
                target_keys=("r_b",),
                operation=INCREMENT,
                expr=Value(VVar("r_a")),
                event=EVENT,
            ),
            Statement(
                target="T",
                target_keys=("g",),
                operation=ASSIGN,
                expr=Sum(
                    (
                        Product((grouped, scalar)),
                        Product((grouped, scalar, Value(VConst(-1)), Value(VConst(0.5)))),
                    )
                ),
                event=EVENT,
            ),
        ]
    )
    program = _make_program(statements, maps, SCHEMAS)
    compiled = _assert_identical(program, _stream(400))
    assert compiled.codegen.codegen_statistics()["fallback_statements"] == 0
