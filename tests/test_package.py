"""Package-level sanity tests: public API surface, version, error hierarchy."""

import importlib

import pytest

import repro
from repro import errors


def test_version_is_exposed():
    assert repro.__version__


def test_public_api_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize(
    "module_name",
    [
        "repro.core",
        "repro.agca",
        "repro.delta",
        "repro.optimizer",
        "repro.compiler",
        "repro.runtime",
        "repro.sql",
        "repro.streams",
        "repro.workloads",
        "repro.bench",
    ],
)
def test_subpackages_import_and_export_their_all(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name}"


def test_error_hierarchy_roots_at_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
            assert issubclass(obj, errors.ReproError)


def test_specific_errors_carry_context():
    err = errors.UnboundVariableError("x", "R(x)")
    assert "x" in str(err) and "R(x)" in str(err)
    sql_err = errors.SQLSyntaxError("boom", position=12)
    assert sql_err.position == 12 and "12" in str(sql_err)
