"""Tests for the indexed map storage, the map store and view caches."""

import pytest

from repro.core.rows import Row
from repro.errors import RuntimeEngineError
from repro.runtime.maps import IndexedTable, MapStore, ViewCache


def test_add_and_get_by_sequence_and_row():
    table = IndexedTable(("k", "v"))
    table.add((1, "x"), 2)
    assert table.get((1, "x")) == 2
    assert table.get(Row({"k": 1, "v": "x"})) == 2
    assert table.get({"k": 1, "v": "x"}) == 2
    assert table.get((9, "zz")) == 0


def test_zero_entries_are_removed():
    table = IndexedTable(("k",))
    table.add((1,), 5)
    table.add((1,), -5)
    assert len(table) == 0
    assert not table


def test_add_arity_mismatch_raises():
    table = IndexedTable(("k", "v"))
    with pytest.raises(RuntimeEngineError):
        table.add((1,), 1)


def test_set_overwrites_and_removes_zero():
    table = IndexedTable(("k",))
    table.set((1,), 10)
    assert table.get((1,)) == 10
    table.set((1,), 0)
    assert len(table) == 0


def test_replace_swaps_contents():
    table = IndexedTable(("k",))
    table.add((1,), 1)
    table.replace([((2,), 5), ((3,), 0), (Row({"k": 4}), 2)])
    assert table.get((1,)) == 0
    assert table.get((2,)) == 5
    assert table.get((3,)) == 0
    assert table.get((4,)) == 2


def test_full_scan_and_fully_bound_scan():
    table = IndexedTable(("a", "b"))
    table.add((1, 1), 1)
    table.add((1, 2), 2)
    assert len(list(table.scan({}))) == 2
    assert list(table.scan({"a": 1, "b": 2}))[0][1] == 2
    assert list(table.scan({"a": 9, "b": 9})) == []


def test_partially_bound_scan_uses_secondary_index():
    table = IndexedTable(("a", "b"))
    for a in range(5):
        for b in range(4):
            table.add((a, b), a * 10 + b)
    results = dict(table.scan({"a": 3}))
    assert len(results) == 4
    assert all(row["a"] == 3 for row in results)
    # The index must stay consistent under later updates.
    table.add((3, 0), -(30))
    assert len(dict(table.scan({"a": 3}))) == 3
    table.add((3, 9), 1)
    assert len(dict(table.scan({"a": 3}))) == 4


def test_scan_on_unknown_column_raises():
    table = IndexedTable(("a",))
    table.add((1,), 1)
    with pytest.raises(RuntimeEngineError):
        list(table.scan({"zzz": 1}))


def test_to_gmr_snapshot():
    table = IndexedTable(("a",))
    table.add((1,), 2)
    snapshot = table.to_gmr()
    table.add((1,), 1)
    assert snapshot[{"a": 1}] == 2  # snapshots are independent of later updates


def test_clear_and_memory_accounting():
    table = IndexedTable(("a",))
    table.add((1,), 1)
    assert table.memory_bytes() > 0
    table.clear()
    assert len(table) == 0


def test_mapstore_declare_is_idempotent():
    store = MapStore()
    first = store.declare("M", ("k",))
    second = store.declare("M", ("k",))
    assert first is second
    assert "M" in store and "X" not in store
    assert store.names() == ("M",)


def test_mapstore_lookup_unknown_map_raises():
    with pytest.raises(RuntimeEngineError):
        MapStore().table("missing")


def test_mapstore_datasource_protocol():
    store = MapStore()
    store.declare("M", ("k", "x"))
    store.table("M").add((1, "a"), 3)
    assert store.map_columns("M") == ("k", "x")
    assert dict(store.scan_map("M", {"k": 1}))[Row({"k": 1, "x": "a"})] == 3
    assert store.sizes() == {"M": 1}
    assert store.memory_bytes() > 0


def test_view_cache_lookup_computes_and_caches():
    calls = []

    def compute(bindings):
        calls.append(dict(bindings))
        return [(Row({"v": bindings["p"] * 10}), 1)]

    cache = ViewCache(("p",), ("v",), compute)
    first = cache.lookup({"p": 2})
    again = cache.lookup({"p": 2})
    other = cache.lookup({"p": 3})
    assert first is again
    assert first.get({"v": 20}) == 1
    assert other.get({"v": 30}) == 1
    assert cache.hits == 1 and cache.misses == 2
    assert len(calls) == 2
    assert len(cache) == 2
    assert cache.memory_bytes() > 0


def test_view_cache_update_all_refreshes_copies_without_invalidating():
    cache = ViewCache(("p",), ("v",), lambda bindings: [(Row({"v": 0}), 1)])
    cache.lookup({"p": 1})
    cache.lookup({"p": 2})

    def updater(bindings, table):
        table.add((bindings["p"],), 1)

    cache.update_all(updater)
    assert cache.lookup({"p": 1}).get((1,)) == 1
    assert cache.hits == 1  # the lookup after update_all is still a cache hit


def test_view_cache_missing_input_variable_raises():
    cache = ViewCache(("p",), ("v",), lambda bindings: [])
    with pytest.raises(RuntimeEngineError):
        cache.lookup({"other": 1})


def test_primary_and_index_for_expose_the_probe_surfaces():
    """The codegen probe surface: primary dict and lazily built indexes."""
    table = IndexedTable(("a", "b"))
    table.add((1, 10), 2)
    table.add((1, 20), 3)
    table.add((2, 10), 5)
    assert table.primary[Row({"a": 1, "b": 10})] == 2
    index = table.index_for(frozenset(("a",)))
    bucket = index.get(Row({"a": 1}))
    assert {dict(k)["b"]: v for k, v in bucket.items()} == {10: 2, 20: 3}
    # Indexes stay maintained through later writes.
    table.add((1, 30), 7)
    assert len(index[Row({"a": 1})]) == 3
    # clear() replaces the primary dict wholesale, so re-read the property.
    table.clear()
    assert table.primary == {}
