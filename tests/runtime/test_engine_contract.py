"""The uniform engine contract: every execution mode behaves identically.

One parametrized suite pins the surface the serving layer and the benchmark
harness rely on: ``apply_many``/``flush``/``result_dict``/``statistics``/
``describe``/``checkpoint_state`` work the same on the per-event, batched and
partitioned engines (including batching inside partitions).
"""

import pytest

from repro.codegen import CompiledEngine
from repro.compiler.hoivm import compile_query
from repro.delta.events import insert
from repro.errors import ReproError
from repro.exec import BatchedEngine, PartitionedEngine
from repro.runtime.engine import IncrementalEngine
from repro.runtime.protocol import EngineProtocol
from repro.workloads import workload

ENGINES = {
    "incremental": lambda program: IncrementalEngine(program),
    "compiled": lambda program: CompiledEngine(program),
    "batched": lambda program: BatchedEngine(program, batch_size=7),
    "batched-compiled": lambda program: BatchedEngine(
        program, batch_size=7, compiled=True
    ),
    "partitioned": lambda program: PartitionedEngine(program, partitions=2),
    "partitioned-batched": lambda program: PartitionedEngine(
        program, partitions=2, batch_size=5
    ),
    "partitioned-compiled": lambda program: PartitionedEngine(
        program, partitions=2, compiled=True
    ),
}


@pytest.fixture(scope="module")
def q3():
    spec = workload("Q3")
    translated = spec.query_factory()
    program = compile_query(
        translated.roots(),
        translated.schemas(),
        static_relations=translated.static_relations(),
    )
    return {
        "program": program,
        "root": next(iter(translated.roots())),
        "statics": spec.static_tables(),
        "events": list(spec.stream_factory(events=180, max_live_orders=20)),
    }


def build(name, fixture):
    engine = ENGINES[name](fixture["program"])
    for relation, rows in fixture["statics"].items():
        if relation in fixture["program"].static_relations:
            engine.load_static(relation, rows)
    return engine


@pytest.fixture(scope="module")
def baseline(q3):
    engine = build("incremental", q3)
    engine.apply_many(q3["events"])
    return engine


@pytest.mark.parametrize("name", list(ENGINES))
def test_engines_implement_the_protocol(q3, name):
    engine = build(name, q3)
    try:
        assert isinstance(engine, EngineProtocol)
    finally:
        engine.close()


@pytest.mark.parametrize("name", list(ENGINES))
def test_apply_many_counts_and_result_dict_agree(q3, baseline, name):
    engine = build(name, q3)
    try:
        assert engine.events_processed == 0
        count = engine.apply_many(q3["events"])
        assert count == len(q3["events"])
        engine.flush()
        assert engine.events_processed == count
        assert engine.result_dict(q3["root"]) == baseline.result_dict(q3["root"])
        assert engine.view(q3["root"]) == baseline.view(q3["root"])
        assert engine.scalar_result(q3["root"]) == baseline.scalar_result(q3["root"])
    finally:
        engine.close()


@pytest.mark.parametrize("name", list(ENGINES))
def test_statistics_carry_the_common_keys(q3, name):
    engine = build(name, q3)
    try:
        engine.apply_many(q3["events"][:60])
        statistics = engine.statistics()
        assert statistics["events_processed"] == 60
        assert statistics["memory_bytes"] > 0
        assert statistics["memory_bytes"] == engine.memory_bytes()
    finally:
        engine.close()


@pytest.mark.parametrize("name", list(ENGINES))
def test_describe_includes_the_compiled_program(q3, name):
    engine = build(name, q3)
    try:
        description = engine.describe()
        assert q3["program"].pretty() in description
    finally:
        engine.close()


@pytest.mark.parametrize("name", list(ENGINES))
def test_flush_is_idempotent_and_close_is_safe(q3, name):
    engine = build(name, q3)
    engine.apply_many(q3["events"][:30])
    engine.flush()
    before = engine.result_dict(q3["root"])
    engine.flush()
    assert engine.result_dict(q3["root"]) == before
    engine.close()


@pytest.mark.parametrize("name", list(ENGINES))
def test_checkpoint_state_round_trips(q3, name):
    engine = build(name, q3)
    try:
        engine.apply_many(q3["events"][:90])
        state = engine.checkpoint_state()
        fresh = ENGINES[name](q3["program"])
        try:
            fresh.restore_state(state)
            assert fresh.events_processed == engine.events_processed
            assert fresh.result_dict(q3["root"]) == engine.result_dict(q3["root"])
            # The restored engine keeps processing correctly.
            tail = q3["events"][90:120]
            fresh.apply_many(tail)
            engine.apply_many(tail)
            assert fresh.result_dict(q3["root"]) == engine.result_dict(q3["root"])
        finally:
            fresh.close()
    finally:
        engine.close()


@pytest.mark.parametrize("name", list(ENGINES))
def test_non_stream_relations_are_rejected(q3, name):
    engine = build(name, q3)
    try:
        with pytest.raises(ReproError):
            engine.apply(insert("NoSuchRelation", 1, 2, 3))
    finally:
        engine.close()


@pytest.mark.parametrize("name", list(ENGINES))
def test_map_sizes_report_every_declared_map(q3, name):
    engine = build(name, q3)
    try:
        engine.apply_many(q3["events"][:40])
        sizes = engine.map_sizes()
        assert set(sizes) == set(q3["program"].maps)
    finally:
        engine.close()
