"""Tests for the strategy engine factories."""

import pytest

from repro.agca.builders import agg, prod, rel
from repro.delta.events import insert
from repro.errors import CompilationError
from repro.runtime.factory import (
    dbtoaster_engine,
    engine_for_strategy,
    ivm_engine,
    naive_engine,
    rep_engine,
)

SCHEMAS = {"R": ("a", "b"), "S": ("b", "c")}
QUERY = agg((), prod(rel("R", "a", "b"), rel("S", "b", "c")))
EVENTS = [insert("R", 1, 1), insert("S", 1, 5), insert("R", 2, 1), insert("S", 2, 6)]


@pytest.mark.parametrize(
    "factory", [dbtoaster_engine, ivm_engine, rep_engine, naive_engine]
)
def test_every_factory_builds_a_working_engine(factory):
    engine = factory(QUERY, SCHEMAS)
    for event in EVENTS:
        engine.apply(event)
    assert engine.scalar_result("Q") == 2


def test_all_strategies_agree():
    results = set()
    for strategy in ("dbtoaster", "ivm", "rep", "naive"):
        engine = engine_for_strategy(strategy, QUERY, SCHEMAS)
        for event in EVENTS:
            engine.apply(event)
        results.add(engine.scalar_result("Q"))
    assert results == {2}


def test_strategy_programs_differ_in_structure():
    smart = dbtoaster_engine(QUERY, SCHEMAS)
    rep = rep_engine(QUERY, SCHEMAS)
    assert smart.program.map_count() > rep.program.map_count()
    assert rep.program.requires_base_relations() == {"R", "S"}
    assert smart.program.requires_base_relations() == frozenset()


def test_unknown_strategy_raises():
    with pytest.raises(CompilationError):
        engine_for_strategy("quantum", QUERY, SCHEMAS)
