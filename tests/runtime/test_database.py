"""Tests for the base-relation store."""

import pytest

from repro.delta.events import delete, insert
from repro.errors import RuntimeEngineError
from repro.runtime.database import Database


def test_declare_and_schema():
    db = Database({"R": ("a", "b")})
    assert db.relations() == ("R",)
    assert db.schema("R") == ("a", "b")
    db.declare("R", ("a", "b"))  # idempotent
    with pytest.raises(RuntimeEngineError):
        db.declare("R", ("x",))
    with pytest.raises(RuntimeEngineError):
        db.schema("missing")


def test_apply_insert_and_delete():
    db = Database({"R": ("a",)})
    db.apply(insert("R", 1))
    db.apply(insert("R", 1))
    assert db.contents("R")[{"a": 1}] == 2
    db.apply(delete("R", 1))
    assert db.contents("R")[{"a": 1}] == 1


def test_apply_arity_mismatch_raises():
    db = Database({"R": ("a", "b")})
    with pytest.raises(RuntimeEngineError):
        db.apply(insert("R", 1))


def test_load_accepts_sequences_and_mappings():
    db = Database({"R": ("a", "b")})
    count = db.load("R", [(1, 2), {"a": 3, "b": 4}])
    assert count == 2
    assert db.sizes() == {"R": 2}


def test_scan_relation_with_binding():
    db = Database({"R": ("a", "b")})
    db.load("R", [(1, 10), (1, 20), (2, 30)])
    assert len(list(db.scan_relation("R", {"a": 1}))) == 2
    assert db.relation_columns("R") == ("a", "b")


def test_memory_accounting_grows():
    db = Database({"R": ("a",)})
    before = db.memory_bytes()
    db.load("R", [(i,) for i in range(50)])
    assert db.memory_bytes() > before
