"""Tests for the reference (oracle / DBX-SPY stand-in) engine."""

import pytest

from repro.agca.builders import agg, cmp, lift, prod, rel, val, vmul
from repro.agca.evaluator import DictSource, Evaluator
from repro.core.gmr import GMR
from repro.delta.events import delete, insert
from repro.errors import EvaluationError, RuntimeEngineError
from repro.runtime.reference import ReferenceEngine, evaluate_reference


def join_query():
    return agg((), prod(rel("R", "a", "b"), rel("S", "b", "c"), val(vmul("a", "c"))))


def test_reference_engine_recomputes_after_each_event():
    engine = ReferenceEngine(join_query(), {"R": ("a", "b"), "S": ("b", "c")}, name="Q")
    engine.apply(insert("R", 2, 1))
    assert engine.scalar_result() == 0
    engine.apply(insert("S", 1, 10))
    assert engine.scalar_result() == 20
    engine.apply(delete("R", 2, 1))
    assert engine.scalar_result() == 0
    assert engine.events_processed == 3


def test_reference_engine_grouped_result():
    query = agg(("b",), prod(rel("R", "a", "b"), rel("S", "b", "c")))
    engine = ReferenceEngine(query, {"R": ("a", "b"), "S": ("b", "c")})
    engine.apply(insert("R", 1, 7))
    engine.apply(insert("S", 7, 3))
    engine.apply(insert("S", 7, 4))
    assert engine.result_dict() == {(7,): 2}
    assert engine.view()[{"b": 7}] == 2


def test_reference_engine_multiple_queries_need_explicit_name():
    queries = {"Q1": agg((), rel("R", "a", "b")), "Q2": agg(("a",), rel("R", "a", "b"))}
    engine = ReferenceEngine(queries, {"R": ("a", "b")})
    engine.apply(insert("R", 1, 2))
    assert engine.scalar_result("Q1") == 1
    with pytest.raises(RuntimeEngineError):
        engine.scalar_result()


def test_reference_engine_rejects_unknown_relation_and_arity():
    engine = ReferenceEngine(join_query(), {"R": ("a", "b"), "S": ("b", "c")})
    with pytest.raises(RuntimeEngineError):
        engine.apply(insert("T", 1))
    with pytest.raises(RuntimeEngineError):
        engine.apply(insert("R", 1))


def test_reference_engine_static_load_and_memory():
    engine = ReferenceEngine(join_query(), {"R": ("a", "b"), "S": ("b", "c")})
    assert engine.load_static("S", [(1, 5), (2, 6)]) == 2
    engine.apply(insert("R", 3, 1))
    assert engine.scalar_result() == 15
    assert engine.memory_bytes() > 0


def test_evaluate_reference_rejects_map_references():
    from repro.agca.builders import mapref

    with pytest.raises(EvaluationError):
        evaluate_reference(mapref("M", "k"), {})


def test_reference_agrees_with_main_evaluator_on_nested_query():
    # Independent implementations of the semantics must agree.
    nested = lift("z", agg((), prod(rel("S", "b2", "c"), cmp("b2", "=", "b"), val("c"))))
    query = agg(("a",), prod(rel("R", "a", "b"), nested, cmp("b", "<", "z")))
    rows_r = [{"a": 1, "b": 2}, {"a": 2, "b": 5}, {"a": 3, "b": 2}]
    rows_s = [{"b": 2, "c": 9}, {"b": 5, "c": 1}, {"b": 2, "c": 4}]

    source = DictSource(
        relations={"R": GMR.from_rows(rows_r), "S": GMR.from_rows(rows_s)},
        schemas={"R": ("a", "b"), "S": ("b", "c")},
    )
    expected = Evaluator(source).evaluate(query)

    engine = ReferenceEngine(query, {"R": ("a", "b"), "S": ("b", "c")})
    for row in rows_r:
        engine.apply(insert("R", row["a"], row["b"]))
    for row in rows_s:
        engine.apply(insert("S", row["b"], row["c"]))
    assert engine.view() == expected


def test_per_event_overhead_is_charged():
    import time

    engine = ReferenceEngine(
        agg((), rel("R", "a")), {"R": ("a",)}, per_event_overhead=0.01
    )
    start = time.perf_counter()
    engine.apply(insert("R", 1))
    assert time.perf_counter() - start >= 0.01
