"""Tests for trigger-statement execution semantics."""

from repro.agca.builders import agg, mapref, prod, rel, val, vmul
from repro.compiler.program import (
    ASSIGN,
    INCREMENT,
    MapDeclaration,
    Statement,
    Trigger,
    TriggerProgram,
)
from repro.delta.events import INSERT, TriggerEvent, insert
from repro.runtime.database import Database
from repro.runtime.engine import IncrementalEngine
from repro.runtime.interpreter import RuntimeSource, TriggerExecutor
from repro.runtime.maps import MapStore


def _program_with_statements(statements, maps, schemas, streams):
    triggers = {}
    for statement in statements:
        trigger = triggers.setdefault(
            f"{statement.event.kind}_{statement.event.relation.lower()}",
            Trigger(statement.event.relation, statement.event.sign),
        )
        trigger.statements.append(statement)
    return TriggerProgram(
        roots={"Q": "Q"},
        maps=maps,
        triggers=triggers,
        schemas=schemas,
        stream_relations=streams,
    )


def test_increment_statement_adds_projected_rows():
    event = TriggerEvent("R", INSERT, ("a", "b"), ("r_a", "r_b"))
    maps = {
        "Q": MapDeclaration("Q", ("r_a",), agg(("a",), rel("R", "a", "b"))),
    }
    statement = Statement(
        target="Q", target_keys=("r_a",), operation=INCREMENT, expr=val("r_b"), event=event,
    )
    program = _program_with_statements([statement], maps, {"R": ("a", "b")}, ("R",))
    engine = IncrementalEngine(program)
    engine.apply(insert("R", 1, 10))
    engine.apply(insert("R", 1, 5))
    engine.apply(insert("R", 2, 7))
    assert engine.result_dict("Q") == {(1,): 15, (2,): 7}


def test_assign_statement_replaces_contents():
    event = TriggerEvent("R", INSERT, ("a",), ("r_a",))
    maps = {
        "Q": MapDeclaration("Q", (), agg((), rel("R", "a"))),
        "M": MapDeclaration("M", ("k",), agg(("k",), rel("R", "k")), level=1),
    }
    maintain_m = Statement(
        target="M", target_keys=("r_a",), operation=INCREMENT, expr=val(1), event=event,
        target_degree=1,
    )
    recompute_q = Statement(
        target="Q", target_keys=(), operation=ASSIGN,
        expr=agg((), prod(mapref("M", "k"), val(vmul("k", 2)))), event=event,
    )
    program = _program_with_statements(
        [maintain_m, recompute_q], maps, {"R": ("a",)}, ("R",)
    )
    engine = IncrementalEngine(program)
    engine.apply(insert("R", 3))
    engine.apply(insert("R", 4))
    # := statements run after += ones, so they see the refreshed M.
    assert engine.scalar_result("Q") == 2 * (3 + 4)


def test_runtime_source_combines_relations_and_maps():
    database = Database({"R": ("a",)})
    database.load("R", [(1,)])
    maps = MapStore()
    maps.declare("M", ("k",)).add((5,), 2)
    source = RuntimeSource(database, maps)
    assert source.relation_columns("R") == ("a",)
    assert source.map_columns("M") == ("k",)
    assert len(list(source.scan_relation("R", {}))) == 1
    assert len(list(source.scan_map("M", {"k": 5}))) == 1


def test_events_without_trigger_are_ignored():
    maps = {"Q": MapDeclaration("Q", (), agg((), rel("R", "a")))}
    program = _program_with_statements([], maps, {"R": ("a",), "S": ("b",)}, ("R", "S"))
    engine = IncrementalEngine(program)
    engine.apply(insert("S", 1))  # no trigger for S: a no-op, not an error
    assert engine.scalar_result("Q") == 0
