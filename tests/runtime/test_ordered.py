"""Ordered range indexes: exact probes, regimes, and the lazy-rebuild contract.

The probe contract is bit-identity with the interpreter's scan: same value,
same type, for every ``> >= < <=`` cutoff, across inserts, updates, and
deletions to zero.  These tests drive :meth:`IndexedTable.range_sum` (the
only entry point the evaluator and generated code use) and cross-check every
answer against a naive in-order scan that replicates the evaluator's
aggregation chain literally.
"""

import random
from fractions import Fraction

import pytest

from repro.core.values import comparison_holds, is_zero, normalize_number
from repro.errors import RuntimeEngineError
from repro.runtime.maps import IndexedTable

OPS = (">", ">=", "<", "<=")


def naive_chain(table, column, op, cutoff):
    """The interpreter's AggSum chain over a primary-dict scan, verbatim."""
    position = sorted(table.columns).index(column)
    total = 0
    for row, value in table._data.items():
        if comparison_holds(row._items[position][1], op, cutoff):
            candidate = total + value
            total = 0 if is_zero(candidate) else normalize_number(candidate)
    return total


def naive_plain(table, column, op, cutoff):
    """The interpreter's Exists total-multiplicity summation, verbatim."""
    position = sorted(table.columns).index(column)
    total = 0
    for row, value in table._data.items():
        if comparison_holds(row._items[position][1], op, cutoff):
            total = total + value
    return normalize_number(total)


def assert_probe_matches(table, column, cutoffs):
    for cutoff in cutoffs:
        for op in OPS:
            want = naive_chain(table, column, op, cutoff)
            got = table.range_sum(column, op, cutoff)
            assert got == want and type(got) is type(want), (op, cutoff, got, want)
            want = naive_plain(table, column, op, cutoff)
            got = table.range_sum(column, op, cutoff, False)
            assert got == want and type(got) is type(want), (op, cutoff, got, want)


def test_duplicate_sort_keys_aggregate_per_column_value():
    # Multi-column keys: many rows share one price; the index must sum them.
    table = IndexedTable(("price", "oid"))
    for oid in range(6):
        table.add((10, oid), 3)
    for oid in range(4):
        table.add((20, oid), 5)
    assert table.range_sum("price", ">", 10) == 20
    assert table.range_sum("price", ">=", 10) == 38
    assert table.range_sum("price", "<", 20) == 18
    assert table.range_sum("price", "<=", 5) == 0
    index = table.range_index("price")
    assert index.stats()["keys"] == 2
    assert index.stats()["rows"] == 10


def test_updates_crossing_the_probe_boundary():
    table = IndexedTable(("price",))
    table.add((10,), 4)
    table.add((30,), 6)
    assert table.range_sum("price", ">", 20) == 6
    # Move weight across the cutoff: delete at 30, add at 15.
    table.add((30,), -6)
    table.add((15,), 6)
    assert table.range_sum("price", ">", 20) == 0
    assert table.range_sum("price", ">", 10) == 6
    assert table.range_sum("price", "<=", 20) == 10
    # Update in place (same key, new value) must take the point-update path.
    table.add((15,), 1)
    assert table.range_sum("price", ">", 10) == 7


def test_deletion_to_zero_removes_the_bucket():
    table = IndexedTable(("price", "oid"))
    table.add((10, 1), 2)
    table.add((10, 2), 3)
    assert table.range_sum("price", ">=", 10) == 5
    table.add((10, 1), -2)
    assert table.range_sum("price", ">=", 10) == 3
    table.add((10, 2), -3)
    assert table.range_sum("price", ">=", 10) == 0
    index = table.range_index("price")
    # Force the pending rebuild (a probe does it) and check the key is gone.
    table.range_sum("price", ">", 0)
    assert index.stats()["keys"] == 0
    assert len(table) == 0


def test_fraction_values_stay_exact_and_probed():
    table = IndexedTable(("k",))
    table.add((1,), Fraction(1, 3))
    table.add((2,), Fraction(2, 3))
    table.add((3,), 7)
    got = table.range_sum("k", ">", 0)
    assert got == 8 and type(got) is int  # integral sums normalize to int
    got = table.range_sum("k", "<=", 1)
    assert got == Fraction(1, 3) and type(got) is Fraction
    assert table.range_index("k").stats()["exact"] is True
    assert table.range_index("k").stats()["scan_fallbacks"] == 0


def test_float_values_force_the_scan_fallback_and_recover():
    table = IndexedTable(("k",))
    table.add((1,), 2)
    table.add((2,), 0.5)
    table.add((3,), 4)
    assert_probe_matches(table, "k", (0, 1, 2, 3, 4))
    stats = table.range_index("k").stats()
    assert stats["exact"] is False and stats["inexact_rows"] == 1
    assert stats["scan_fallbacks"] > 0
    # Remove the float: the exact regime (and the probe path) returns.
    table.add((2,), -0.5)
    assert table.range_sum("k", ">", 0) == 6
    stats = table.range_index("k").stats()
    assert stats["exact"] is True and stats["inexact_rows"] == 0
    before = stats["scan_fallbacks"]
    assert_probe_matches(table, "k", (0, 1, 2, 3, 4))
    assert table.range_index("k").stats()["scan_fallbacks"] == before


def test_mixed_type_keys_break_the_index_but_scans_still_answer():
    table = IndexedTable(("k",))
    table.add(("a",), 1)
    table.add((2,), 1)
    # Ordering str against int raises exactly like the interpreter's compare.
    with pytest.raises(TypeError):
        table.range_sum("k", ">", 1)
    assert table.range_index("k").stats()["broken"] is True
    # Equality-free string tables order fine.
    strings = IndexedTable(("k",))
    for key, value in (("a", 1), ("b", 2), ("c", 4)):
        strings.add((key,), value)
    assert strings.range_sum("k", ">", "a") == 6
    assert strings.range_sum("k", "<=", "b") == 3


def test_nan_keys_disable_the_index_but_scans_stay_correct():
    # NaN compares False to everything, so sorted()/bisect would silently
    # mis-position it; the index must stand down instead of answering wrong.
    nan = float("nan")
    table = IndexedTable(("k",))
    table.add((nan,), 5)
    table.add((2.0,), 3)
    assert_probe_matches(table, "k", (1.5, 2.0, 3.0))
    assert table.range_sum("k", ">", 1.5) == 3
    assert table.range_index("k").stats()["broken"] is True
    # NaN arriving through incremental maintenance (index already live).
    table2 = IndexedTable(("k",))
    table2.add((1.0,), 2)
    assert table2.range_sum("k", ">", 0) == 2
    table2.add((nan,), 7)
    assert_probe_matches(table2, "k", (0.5, 1.0))
    assert table2.range_index("k").stats()["broken"] is True


def test_nan_cutoffs_fall_back_to_the_scan():
    table = IndexedTable(("k",))
    table.add((1,), 2)
    table.add((2,), 3)
    nan = float("nan")
    for op in OPS:
        got = table.range_sum("k", op, nan)
        assert got == 0 and type(got) is int, (op, got)
    assert table.range_index("k").stats()["broken"] is False


def test_non_allowlisted_value_types_count_as_inexact():
    # Decimal addition is context-rounded, hence order-sensitive: the index
    # must treat it like floats and leave the in-order scan in charge.
    from decimal import Decimal

    table = IndexedTable(("k",))
    table.add((1,), Decimal("2.5"))
    table.add((2,), 3)
    got = table.range_sum("k", ">=", 1)
    assert got == Decimal("5.5")
    stats = table.range_index("k").stats()
    assert stats["exact"] is False and stats["inexact_rows"] == 1


def test_unknown_column_raises():
    table = IndexedTable(("a", "b"))
    with pytest.raises(RuntimeEngineError):
        table.range_index("nope")


def test_clear_and_replace_drop_indexes_lazily():
    table = IndexedTable(("k",))
    table.add((1,), 5)
    table.add((2,), 7)
    assert table.range_sum("k", ">", 1) == 7
    first = table.range_index("k")
    table.replace([((1,), 3), ((3,), 4)])
    # The index object was dropped with the contents; the next probe builds a
    # fresh one from the new data.
    assert table.range_index("k") is not first
    assert table.range_sum("k", ">", 1) == 4
    table.clear()
    assert table.range_sum("k", ">", 0) == 0
    assert table.range_index("k").stats()["keys"] == 0


def test_set_maintains_the_index():
    table = IndexedTable(("k",))
    table.add((1,), 5)
    assert table.range_sum("k", ">=", 1) == 5
    table.set((1,), 9)
    assert table.range_sum("k", ">=", 1) == 9
    table.set((2,), 4)
    assert table.range_sum("k", ">", 1) == 4
    table.set((1,), 0)  # set-to-zero removes
    assert table.range_sum("k", ">=", 1) == 4


def test_random_stream_probe_equals_naive_scan():
    # Inserts, updates and deletes over duplicate keys; every few events probe
    # all four operators against the naive chain and plain scans.
    rng = random.Random(1234)
    table = IndexedTable(("price", "oid"))
    applied = []
    for step in range(3000):
        if applied and rng.random() < 0.45:
            # Retract an earlier delta (deletion / partial execution).
            key, delta = applied.pop(rng.randrange(len(applied)))
            table.add(key, -delta)
        else:
            key = (rng.randint(-15, 15), rng.randint(0, 400))
            delta = rng.choice((-7, -2, 1, 3, 11))
            table.add(key, delta)
            applied.append((key, delta))
        if step % 11 == 0:
            cutoff = rng.randint(-17, 17)
            assert_probe_matches(table, "price", (cutoff,))
    stats = table.range_index("price").stats()
    assert stats["probes"] > 0 and stats["scan_fallbacks"] == 0


def test_stats_flow_through_table_and_store():
    from repro.runtime.maps import MapStore

    store = MapStore()
    table = store.declare("M", ("price",))
    table.add((1,), 2)
    table.range_sum("price", ">", 0)
    stats = store.stats()["M"]
    assert "ordered_indexes" in stats
    assert stats["ordered_indexes"]["price"]["probes"] == 1
