"""Tests for the incremental engine facade."""

import pytest

from repro.agca.builders import agg, cmp, prod, rel, val, vmul
from repro.compiler.hoivm import compile_query
from repro.delta.events import delete, insert
from repro.errors import RuntimeEngineError
from repro.runtime.engine import IncrementalEngine

SCHEMAS = {"R": ("a", "b"), "S": ("b", "c"), "N": ("k", "label")}


def join_program(**kwargs):
    query = agg((), prod(rel("R", "a", "b"), rel("S", "b", "c"), val(vmul("a", "c"))))
    return compile_query(query, SCHEMAS, name="Q", **kwargs)


def test_engine_declares_all_maps():
    engine = IncrementalEngine(join_program(static_relations=("N",)))
    assert set(engine.map_sizes()) == set(engine.program.maps)


def test_engine_applies_events_and_counts_them():
    engine = IncrementalEngine(join_program(static_relations=("N",)))
    engine.apply(insert("R", 2, 1))
    engine.apply(insert("S", 1, 10))
    assert engine.events_processed == 2
    assert engine.scalar_result("Q") == 20


def test_engine_rejects_non_stream_relations():
    engine = IncrementalEngine(join_program(static_relations=("N",)))
    with pytest.raises(RuntimeEngineError):
        engine.apply(insert("N", 1, "x"))
    with pytest.raises(RuntimeEngineError):
        engine.apply(insert("Unknown", 1))


def test_load_static_only_for_declared_static_relations():
    engine = IncrementalEngine(join_program(static_relations=("N",)))
    assert engine.load_static("N", [(1, "x"), (2, "y")]) == 2
    with pytest.raises(RuntimeEngineError):
        engine.load_static("R", [(1, 2)])


def test_insert_then_delete_returns_to_zero_state():
    engine = IncrementalEngine(join_program())
    events = [insert("R", 2, 1), insert("S", 1, 10), insert("S", 1, 5), insert("R", 3, 1)]
    for event in events:
        engine.apply(event)
    assert engine.scalar_result("Q") == 2 * 10 + 2 * 5 + 3 * 10 + 3 * 5
    for event in reversed(events):
        engine.apply(event.inverted())
    assert engine.scalar_result("Q") == 0
    # Auxiliary views are also back to empty.
    assert all(size == 0 for size in engine.map_sizes().values())


def test_view_and_result_dict_for_grouped_query():
    query = agg(("b",), prod(rel("R", "a", "b"), rel("S", "b", "c")))
    program = compile_query(query, SCHEMAS, name="ByB")
    engine = IncrementalEngine(program)
    engine.apply(insert("R", 1, 7))
    engine.apply(insert("S", 7, 100))
    engine.apply(insert("S", 7, 200))
    assert engine.result_dict("ByB") == {(7,): 2}
    assert engine.view("ByB")[{"b": 7}] == 2


def test_unknown_view_name_raises():
    engine = IncrementalEngine(join_program())
    with pytest.raises(RuntimeEngineError):
        engine.view("nope")


def test_apply_many_and_memory_reporting():
    engine = IncrementalEngine(join_program())
    count = engine.apply_many([insert("R", i, i % 3) for i in range(20)])
    assert count == 20
    assert engine.memory_bytes() > 0
    assert "materialized views" in engine.describe()


def test_rep_engine_maintains_base_relations():
    engine = IncrementalEngine(join_program(options="rep"))
    engine.apply(insert("R", 2, 1))
    engine.apply(insert("S", 1, 3))
    assert engine.scalar_result("Q") == 6
    assert engine.database.sizes().get("R") == 1
