"""Tests for generalized multiset relations, including the ring laws."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.gmr import GMR
from repro.core.rows import Row


def gmr(*entries):
    return GMR([(Row(row), mult) for row, mult in entries])


def test_empty_and_scalar_constructors():
    assert len(GMR.empty()) == 0
    assert GMR.scalar(5)[Row()] == 5
    assert GMR.scalar(0) == GMR.empty()


def test_singleton_and_from_rows():
    g = GMR.from_rows([{"a": 1}, {"a": 1}, {"a": 2}])
    assert g[{"a": 1}] == 2
    assert g[{"a": 2}] == 1
    assert GMR.singleton({"a": 1}, 3)[{"a": 1}] == 3


def test_zero_multiplicities_are_dropped():
    g = gmr(({"a": 1}, 2), ({"a": 1}, -2), ({"a": 2}, 1))
    assert g.support_size == 1
    assert {"a": 1} not in g


def test_missing_rows_have_multiplicity_zero():
    assert gmr(({"a": 1}, 2))[{"a": 5}] == 0


def test_add_tuple_mutation_and_removal():
    g = GMR()
    g.add_tuple({"a": 1}, 2)
    g.add_tuple({"a": 1}, -2)
    assert not g


def test_addition_merges_multiplicities():
    left = gmr(({"a": 1}, 2), ({"a": 2}, 1))
    right = gmr(({"a": 1}, -1), ({"a": 3}, 4))
    total = left + right
    assert total[{"a": 1}] == 1
    assert total[{"a": 2}] == 1
    assert total[{"a": 3}] == 4


def test_negation_and_subtraction():
    g = gmr(({"a": 1}, 2))
    assert (-g)[{"a": 1}] == -2
    assert (g - g) == GMR.empty()


def test_scale():
    g = gmr(({"a": 1}, 2))
    assert g.scale(3)[{"a": 1}] == 6
    assert g.scale(0) == GMR.empty()


def test_natural_join_on_shared_column():
    r = gmr(({"a": 1, "b": 10}, 2), ({"a": 2, "b": 20}, 1))
    s = gmr(({"b": 10, "c": 5}, 3), ({"b": 99, "c": 7}, 1))
    joined = r * s
    assert joined[{"a": 1, "b": 10, "c": 5}] == 6
    assert joined.support_size == 1


def test_natural_join_disjoint_columns_is_cross_product():
    r = gmr(({"a": 1}, 2), ({"a": 2}, 1))
    s = gmr(({"b": 5}, 3))
    joined = r * s
    assert joined[{"a": 1, "b": 5}] == 6
    assert joined[{"a": 2, "b": 5}] == 3


def test_join_with_scalar_acts_as_scaling():
    r = gmr(({"a": 1}, 2))
    assert (r * GMR.scalar(4))[{"a": 1}] == 8


def test_project_sums_multiplicities():
    g = gmr(({"a": 1, "b": 1}, 2), ({"a": 1, "b": 2}, 3), ({"a": 2, "b": 1}, 1))
    projected = g.project(["a"])
    assert projected[{"a": 1}] == 5
    assert projected[{"a": 2}] == 1


def test_select_filters_rows():
    g = gmr(({"a": 1}, 1), ({"a": 5}, 1))
    assert g.select(lambda row: row["a"] > 2).support_size == 1


def test_rename_columns():
    g = gmr(({"a": 1}, 1))
    assert g.rename({"a": "x"})[{"x": 1}] == 1


def test_filter_consistent_with_context():
    g = gmr(({"a": 1, "b": 2}, 1), ({"a": 2, "b": 2}, 1))
    assert g.filter_consistent({"a": 1}).support_size == 1


def test_total_multiplicity_and_scalar_value():
    g = gmr(({"a": 1}, 2), ({"a": 2}, 3.5))
    assert g.total_multiplicity() == 5.5
    assert GMR.scalar(7).scalar_value() == 7
    assert GMR.empty().scalar_value() == 0


def test_to_dicts_expands_multiplicities():
    g = gmr(({"a": 1}, 2))
    assert g.to_dicts() == [{"a": 1}, {"a": 1}]


def test_to_dicts_rejects_negative_or_fractional():
    with pytest.raises(ValueError):
        gmr(({"a": 1}, -1)).to_dicts()
    with pytest.raises(ValueError):
        gmr(({"a": 1}, 1.5)).to_dicts()


def test_update_in_place_with_scale():
    g = gmr(({"a": 1}, 1))
    g.update(gmr(({"a": 1}, 2), ({"a": 2}, 1)), scale=-1)
    assert g[{"a": 1}] == -1
    assert g[{"a": 2}] == -1


def test_columns_union():
    g = gmr(({"a": 1}, 1), ({"a": 2, "b": 1}, 1))
    assert g.columns() == frozenset({"a", "b"})


# ---------------------------------------------------------------------------
# Ring laws (property-based): GMRs with + and * form a commutative ring.
# The paper requires all tuples of one GMR to share a schema, so the generator
# produces union-compatible GMRs (every row binds the same columns).
# ---------------------------------------------------------------------------

rows = st.fixed_dictionaries({
    "a": st.integers(min_value=0, max_value=2),
    "b": st.integers(min_value=0, max_value=2),
})
gmrs = st.lists(
    st.tuples(rows, st.integers(min_value=-3, max_value=3)), max_size=4
).map(lambda entries: GMR((Row(r), m) for r, m in entries))


@settings(max_examples=60, deadline=None)
@given(gmrs, gmrs)
def test_addition_is_commutative(x, y):
    assert x + y == y + x


@settings(max_examples=60, deadline=None)
@given(gmrs, gmrs, gmrs)
def test_addition_is_associative(x, y, z):
    assert (x + y) + z == x + (y + z)


@settings(max_examples=60, deadline=None)
@given(gmrs)
def test_additive_identity_and_inverse(x):
    assert x + GMR.empty() == x
    assert x + (-x) == GMR.empty()


@settings(max_examples=60, deadline=None)
@given(gmrs, gmrs)
def test_multiplication_is_commutative_on_these_schemas(x, y):
    # Natural join of GMRs over the same column universe is commutative.
    assert x * y == y * x


@settings(max_examples=40, deadline=None)
@given(gmrs, gmrs, gmrs)
def test_multiplication_distributes_over_addition(x, y, z):
    assert x * (y + z) == (x * y) + (x * z)


@settings(max_examples=40, deadline=None)
@given(gmrs)
def test_multiplicative_identity_is_scalar_one(x):
    assert x * GMR.scalar(1) == x
    assert x * GMR.empty() == GMR.empty()
