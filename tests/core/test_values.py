"""Tests for multiplicity/value arithmetic helpers."""

from fractions import Fraction

import pytest

from repro.core.values import compare, comparison_holds, div, is_zero, normalize_number


def test_is_zero_integers_and_fractions_exact():
    assert is_zero(0)
    assert is_zero(Fraction(0, 3))
    assert not is_zero(1)
    assert not is_zero(Fraction(1, 10**12))


def test_is_zero_float_uses_tolerance():
    assert is_zero(1e-15)
    assert not is_zero(1e-6)


def test_is_zero_bool():
    assert is_zero(False)
    assert not is_zero(True)


def test_normalize_collapses_integral_values():
    assert normalize_number(3.0) == 3 and isinstance(normalize_number(3.0), int)
    assert normalize_number(Fraction(4, 2)) == 2 and isinstance(normalize_number(Fraction(4, 2)), int)
    assert normalize_number(Fraction(1, 3)) == Fraction(1, 3)
    assert normalize_number(2.5) == 2.5
    assert normalize_number(True) == 1


def test_div_regular():
    assert div(6, 3) == 2
    assert div(7, 2) == 3.5
    assert div(1.0, 4) == 0.25


def test_div_by_zero_yields_zero():
    assert div(5, 0) == 0
    assert div(0.0, 0.0) == 0


def test_compare_numbers():
    assert compare(1, "<", 2)
    assert compare(2, ">=", 2)
    assert not compare(3, "=", 4)
    assert compare(3, "!=", 4)
    assert compare(3, "<>", 4)


def test_compare_strings_lexicographic():
    assert compare("1994-01-01", "<", "1995-01-01")
    assert compare("abc", "=", "abc")


def test_compare_mixed_types_equality_only():
    assert not compare(1, "=", "1")
    assert compare(1, "!=", "1")
    with pytest.raises(TypeError):
        compare(1, "<", "1")


def test_compare_unknown_operator():
    with pytest.raises(ValueError):
        compare(1, "~", 2)


def test_comparison_holds_returns_multiplicity():
    assert comparison_holds(1, "<", 2) == 1
    assert comparison_holds(2, "<", 1) == 0
