"""Tests for the Row tuple type."""

import pytest
from hypothesis import given, strategies as st

from repro.core.rows import EMPTY_ROW, Row, merge_rows, rows_consistent


def test_row_from_dict_and_pairs_are_equal():
    assert Row({"a": 1, "b": 2}) == Row([("b", 2), ("a", 1)])


def test_row_equality_is_order_independent():
    assert Row({"x": 1, "y": 2}) == Row({"y": 2, "x": 1})
    assert hash(Row({"x": 1, "y": 2})) == hash(Row({"y": 2, "x": 1}))


def test_row_duplicate_column_rejected():
    with pytest.raises(ValueError):
        Row([("a", 1), ("a", 2)])


def test_row_mapping_protocol():
    row = Row({"a": 1, "b": "text"})
    assert row["a"] == 1
    assert row.get("missing") is None
    assert "b" in row and "c" not in row
    assert len(row) == 2
    assert sorted(row) == ["a", "b"]


def test_row_getitem_missing_raises():
    with pytest.raises(KeyError):
        Row({"a": 1})["b"]


def test_empty_row_singleton_behaviour():
    assert len(EMPTY_ROW) == 0
    assert EMPTY_ROW == Row()
    assert EMPTY_ROW.columns == frozenset()


def test_project_keeps_only_requested_columns():
    row = Row({"a": 1, "b": 2, "c": 3})
    assert row.project(["a", "c", "zzz"]) == Row({"a": 1, "c": 3})


def test_drop_removes_columns():
    row = Row({"a": 1, "b": 2})
    assert row.drop(["a"]) == Row({"b": 2})


def test_rename_columns():
    row = Row({"a": 1, "b": 2})
    assert row.rename({"a": "x"}) == Row({"x": 1, "b": 2})


def test_extend_consistent():
    left = Row({"a": 1})
    right = {"b": 2, "a": 1}
    assert left.extend(right) == Row({"a": 1, "b": 2})


def test_extend_inconsistent_raises():
    with pytest.raises(ValueError):
        Row({"a": 1}).extend({"a": 2})


def test_consistent_with():
    row = Row({"a": 1, "b": 2})
    assert row.consistent_with({"a": 1, "c": 9})
    assert not row.consistent_with({"a": 3})


def test_rows_consistent_helper():
    assert rows_consistent({"a": 1}, {"b": 2})
    assert not rows_consistent({"a": 1}, {"a": 2})


def test_merge_rows_is_natural_join_of_singletons():
    merged = merge_rows(Row({"a": 1}), Row({"b": 2}))
    assert merged == Row({"a": 1, "b": 2})


def test_row_repr_is_stable():
    assert repr(Row({"b": 2, "a": 1})) == "<a: 1, b: 2>"


def test_row_equality_against_plain_mapping():
    assert Row({"a": 1}) == {"a": 1}
    assert Row({"a": 1}) != {"a": 2}


@given(st.dictionaries(st.text(min_size=1, max_size=3), st.integers(), max_size=5))
def test_row_roundtrips_through_dict(mapping):
    assert dict(Row(mapping)) == mapping


@given(
    st.dictionaries(st.sampled_from("abcde"), st.integers(), max_size=4),
    st.dictionaries(st.sampled_from("abcde"), st.integers(), max_size=4),
)
def test_extend_matches_consistency_check(left, right):
    row = Row(left)
    if row.consistent_with(right):
        merged = row.extend(right)
        assert dict(merged) == {**left, **right}
    else:
        with pytest.raises(ValueError):
            row.extend(right)


@given(st.dictionaries(st.sampled_from("abcdef"), st.integers(), max_size=6),
       st.sets(st.sampled_from("abcdef"), max_size=6))
def test_project_then_drop_partition(mapping, columns):
    row = Row(mapping)
    projected = row.project(columns)
    dropped = row.drop(columns)
    assert set(projected.columns) | set(dropped.columns) == row.columns
    assert not set(projected.columns) & set(dropped.columns)


def test_from_sorted_items_matches_the_checked_constructor():
    items = (("a", 1), ("b", "x"))
    fast = Row.from_sorted_items(items)
    slow = Row({"b": "x", "a": 1})
    assert fast == slow
    assert hash(fast) == hash(slow)
    assert dict(fast) == {"a": 1, "b": "x"}
