"""Tests for the HO-IVM compiler driver."""

import pytest

from repro.agca.builders import agg, cmp, exists, lift, prod, rel, val, vmul
from repro.compiler.hoivm import compile_query
from repro.compiler.materialization import CompilerOptions
from repro.compiler.program import ASSIGN, INCREMENT
from repro.errors import CompilationError

SCHEMAS = {"R": ("a", "b"), "S": ("b", "c"), "T": ("c", "d")}


def test_compile_single_expression_uses_name():
    program = compile_query(agg((), rel("R", "a", "b")), SCHEMAS, name="MyQuery")
    assert "MyQuery" in program.maps
    assert program.roots == {"MyQuery": "MyQuery"}


def test_unknown_relation_is_rejected():
    with pytest.raises(CompilationError):
        compile_query(agg((), rel("Unknown", "a")), SCHEMAS)


def test_query_with_free_input_variables_is_rejected():
    with pytest.raises(CompilationError):
        compile_query(agg((), prod(rel("R", "a", "b"), cmp("a", "<", "limit"))), SCHEMAS)


def test_two_way_join_produces_first_order_maps_and_constant_triggers():
    query = agg((), prod(rel("R", "a", "b"), rel("S", "b", "c"), val(vmul("a", "c"))))
    program = compile_query(query, SCHEMAS, name="Q")
    # One root plus one first-order view per input relation.
    assert program.map_count() == 3
    for relation in ("R", "S"):
        trigger = program.trigger_for(1, relation)
        assert trigger is not None and len(trigger.statements) == 2
        for statement in trigger.statements:
            assert statement.operation == INCREMENT
            assert not statement.loop_keys()  # constant-time updates


def test_insert_and_delete_triggers_are_duals():
    query = agg((), prod(rel("R", "a", "b"), rel("S", "b", "c")))
    program = compile_query(query, SCHEMAS)
    insert_stmts = program.trigger_for(1, "R").statements
    delete_stmts = program.trigger_for(-1, "R").statements
    assert len(insert_stmts) == len(delete_stmts)
    assert {s.target for s in insert_stmts} == {s.target for s in delete_stmts}


def test_statement_ordering_reads_old_views():
    query = agg((), prod(rel("R", "a", "b"), rel("S", "b", "c")))
    program = compile_query(query, SCHEMAS, name="Q")
    statements = program.trigger_for(1, "R").statements
    targets = [s.target for s in statements]
    # The root update (which reads the auxiliary view) must run before the
    # auxiliary view's own maintenance.
    assert targets[0] == "Q"


def test_depth_zero_emits_reevaluation_over_base_tables():
    query = agg((), prod(rel("R", "a", "b"), rel("S", "b", "c")))
    program = compile_query(query, SCHEMAS, options="rep", name="Q")
    assert program.map_count() == 1
    statements = list(program.statements())
    assert statements and all(s.operation == ASSIGN for s in statements)
    assert program.requires_base_relations() == {"R", "S"}


def test_depth_one_emits_first_order_deltas_over_base_tables():
    query = agg((), prod(rel("R", "a", "b"), rel("S", "b", "c")))
    program = compile_query(query, SCHEMAS, options="ivm", name="Q")
    assert program.map_count() == 1
    statements = list(program.statements())
    assert all(s.operation == INCREMENT for s in statements)
    assert program.requires_base_relations() == {"R", "S"}


def test_static_relations_get_no_triggers():
    query = agg((), prod(rel("R", "a", "b"), rel("S", "b", "c")))
    program = compile_query(query, SCHEMAS, static_relations=("S",))
    assert program.trigger_for(1, "S") is None
    assert "S" not in program.stream_relations


def test_multiple_roots_share_auxiliary_views():
    q1 = agg((), prod(rel("R", "a", "b"), rel("S", "b", "c")))
    q2 = agg(("b",), prod(rel("R", "a", "b"), rel("S", "b", "c")))
    program = compile_query({"Q1": q1, "Q2": q2}, SCHEMAS)
    assert set(program.roots) == {"Q1", "Q2"}
    # Shared first-order views are deduplicated across the two roots.
    assert program.map_count() <= 2 + 3


def test_nested_aggregate_reevaluation_strategy_produces_assign_statement():
    nested = lift("z", agg((), prod(rel("S", "b2", "c"), val("c"))))
    query = agg((), prod(rel("R", "a", "b"), nested, cmp("b", "<", "z")))
    program = compile_query(query, SCHEMAS, name="Q", options=CompilerOptions(nested_strategy="reeval"))
    s_statements = program.trigger_for(1, "S").statements
    assert any(s.operation == ASSIGN and s.target == "Q" for s in s_statements)


def test_nested_aggregate_equality_correlation_stays_incremental():
    nested = lift(
        "z", agg((), prod(rel("S", "b2", "c"), cmp("b2", "=", "b"), val("c")))
    )
    query = agg(("a",), prod(rel("R", "a", "b"), nested, cmp("b", "<", "z")))
    program = compile_query(query, SCHEMAS, name="Q")
    s_statements = program.trigger_for(1, "S").statements
    root_updates = [s for s in s_statements if s.target == "Q"]
    assert root_updates and all(s.operation == INCREMENT for s in root_updates)


def test_nested_aggregate_uncorrelated_chooses_reevaluation_automatically():
    nested = lift("z", agg((), prod(rel("S", "b2", "c"), val("c"))))
    query = agg((), prod(rel("R", "a", "b"), nested, cmp("b", "<", "z")))
    program = compile_query(query, SCHEMAS, name="Q")
    s_statements = program.trigger_for(1, "S").statements
    root_updates = [s for s in s_statements if s.target == "Q"]
    assert root_updates and all(s.operation == ASSIGN for s in root_updates)


def test_forced_incremental_strategy_never_emits_assign():
    nested = lift("z", agg((), prod(rel("S", "b2", "c"), val("c"))))
    query = agg((), prod(rel("R", "a", "b"), nested, cmp("b", "<", "z")))
    program = compile_query(
        query, SCHEMAS, name="Q", options=CompilerOptions(nested_strategy="incremental")
    )
    assert all(s.operation == INCREMENT for s in program.statements())


def test_exists_nested_relation_is_handled():
    query = agg(
        ("a",),
        prod(rel("R", "a", "b"), exists(prod(rel("S", "b2", "c"), cmp("b2", "=", "b")))),
    )
    program = compile_query(query, SCHEMAS, name="Q")
    assert program.trigger_for(1, "S") is not None


def test_three_way_chain_join_has_polynomially_many_maps():
    query = agg(
        (),
        prod(rel("R", "a", "b"), rel("S", "b", "c"), rel("T", "c", "d")),
    )
    program = compile_query(query, SCHEMAS, name="Q")
    assert program.map_count() <= 10
    # Every non-root map must be definable without input variables.
    from repro.agca.schema import input_variables

    for decl in program.maps.values():
        assert not input_variables(decl.definition)
