"""Tests for materialization decisions (decomposition, dedup, nested aggregates)."""

import pytest

from repro.agca.ast import Lift, MapRef, Relation
from repro.agca.builders import agg, cmp, lift, prod, rel, val, vmul
from repro.agca.printer import to_string
from repro.agca.schema import input_variables
from repro.compiler.materialization import (
    CompilerOptions,
    MaterializationContext,
    PRESETS,
    options_for,
)
from repro.errors import CompilationError

SCHEMAS = {"R": ("a", "b"), "S": ("b", "c"), "T": ("c", "d"), "N": ("k", "name")}


def make_context(**options):
    return MaterializationContext(
        SCHEMAS, stream_relations=("R", "S", "T"), static_relations=("N",),
        options=CompilerOptions(**options),
    )


def test_options_presets_exist_and_validate():
    for name in PRESETS:
        assert isinstance(options_for(name), CompilerOptions)
    with pytest.raises(CompilationError):
        options_for("bogus")
    with pytest.raises(CompilationError):
        CompilerOptions(nested_strategy="wrong")
    with pytest.raises(CompilationError):
        CompilerOptions(depth=-1)


def test_example10_decomposition_creates_two_maps():
    # Paper Example 10: delta of R(A,b)*T(c,D) for +S(b,c) decomposes into
    # M1[b] := Sum[b](R(A,b)) and M2[c] := Sum[c](T(c,D)).
    ctx = make_context()
    expr = prod(rel("R", "A", "b"), rel("T", "c", "D"))
    rewritten = ctx.materialize(expr, bound=["b", "c"], needed=[], level=1)
    refs = [n for n in [rewritten, *getattr(rewritten, "terms", [])] if isinstance(n, MapRef)]
    assert len(ctx.maps) == 2
    assert len(refs) == 2
    for decl in ctx.maps.values():
        assert decl.degree == 1
        assert not input_variables(decl.definition)


def test_decomposition_disabled_materializes_cross_product():
    ctx = make_context(decomposition=False)
    expr = prod(rel("R", "A", "b"), rel("T", "c", "D"))
    ctx.materialize(expr, bound=["b", "c"], needed=[], level=1)
    assert len(ctx.maps) == 1
    (decl,) = ctx.maps.values()
    assert decl.degree == 2


def test_duplicate_views_are_shared():
    ctx = make_context()
    expr = prod(rel("S", "x", "c"), val("c"))
    first = ctx.materialize(expr, bound=["x"], needed=[], level=1)
    second = ctx.materialize(prod(rel("S", "y", "c2"), val("c2")), bound=["y"], needed=[], level=1)
    assert len(ctx.maps) == 1
    assert isinstance(first, MapRef) and isinstance(second, MapRef)
    assert first.name == second.name
    assert first.keys == ("x",) and second.keys == ("y",)


def test_dedup_can_be_disabled():
    ctx = make_context(dedup=False)
    ctx.materialize(prod(rel("S", "x", "c"), val("c")), bound=["x"], needed=[], level=1)
    ctx.materialize(prod(rel("S", "y", "c2"), val("c2")), bound=["y"], needed=[], level=1)
    assert len(ctx.maps) == 2


def test_trigger_variable_as_column_becomes_parameter_key():
    ctx = make_context()
    rewritten = ctx.materialize(
        prod(rel("S", "x", "c"), val("c")), bound=["x"], needed=[], level=1
    )
    assert isinstance(rewritten, MapRef)
    assert rewritten.keys == ("x",)
    (decl,) = ctx.maps.values()
    assert len(decl.keys) == 1
    assert decl.keys[0] != "x"  # the definition uses a fresh key variable


def test_value_factors_are_pushed_into_the_component():
    ctx = make_context()
    rewritten = ctx.materialize(
        prod(rel("S", "b", "c"), val(vmul("c", 2))), bound=[], needed=["b"], level=1
    )
    (decl,) = ctx.maps.values()
    assert "c" in to_string(decl.definition)
    assert isinstance(rewritten, MapRef)


def test_factors_with_trigger_variables_stay_outside():
    ctx = make_context()
    rewritten = ctx.materialize(
        prod(rel("S", "b", "c"), val("x")), bound=["x"], needed=["b"], level=1
    )
    (decl,) = ctx.maps.values()
    assert "x" not in to_string(decl.definition)
    assert "x" in to_string(rewritten)


def test_static_only_component_is_not_materialized():
    ctx = make_context()
    rewritten = ctx.materialize(prod(rel("N", "k", "nm")), bound=[], needed=["k"], level=1)
    assert rewritten == prod(rel("N", "k", "nm"))
    assert len(ctx.maps) == 0


def test_mixed_static_stream_component_is_materialized():
    ctx = make_context()
    rewritten = ctx.materialize(
        prod(rel("R", "a", "k"), rel("N", "k", "nm")), bound=[], needed=["a"], level=1
    )
    assert isinstance(rewritten, MapRef)
    (decl,) = ctx.maps.values()
    assert decl.degree == 2


def test_nested_lift_body_is_materialized():
    ctx = make_context()
    nested = lift("z", agg((), prod(rel("S", "b", "c"), val("c"))))
    rewritten = ctx.materialize(
        prod(rel("R", "a", "b"), nested, cmp("a", "<", "z")),
        bound=[],
        needed=["a"],
        level=1,
    )
    lifts = [n for n in getattr(rewritten, "terms", []) if isinstance(n, Lift)]
    assert lifts, to_string(rewritten)
    assert "S(" not in to_string(lifts[0].term)  # the body now reads a map
    assert len(ctx.maps) == 2  # outer R component + the nested aggregate map


def test_register_map_avoid_guard_prevents_self_reference():
    ctx = make_context()
    definition = agg(("k",), prod(rel("S", "k", "c"), val("c")))
    first = ctx.register_map(("k",), definition, level=1)
    assert first is not None
    again = ctx.register_map(("k",), definition, level=1, avoid=first.name)
    assert again is None


def test_register_root_rejects_duplicates():
    ctx = make_context()
    ctx.register_root("Q", (), agg((), rel("R", "a", "b")))
    with pytest.raises(CompilationError):
        ctx.register_root("Q", (), agg((), rel("R", "a", "b")))
