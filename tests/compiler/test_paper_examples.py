"""End-to-end reproduction of the paper's worked examples.

* Example 1: the table of view states for Q = count(R x S) under insertions.
* Example 2 / Example 6: the total-sales query with its constant-time triggers.
* Example 8: the shape of the viewlet-transform trigger for a degree-2 query.
"""

from repro.agca.builders import agg, cmp, prod, rel, val, vmul
from repro.compiler.hoivm import compile_query
from repro.compiler.program import INCREMENT
from repro.compiler.viewlet import viewlet_transform
from repro.delta.events import insert
from repro.runtime.engine import IncrementalEngine

COUNT_SCHEMAS = {"R": ("a",), "S": ("b",)}
SALES_SCHEMAS = {"O": ("ordk", "custk", "xch"), "LI": ("lordk", "ptk", "price")}


def count_query():
    return agg((), prod(rel("R", "a"), rel("S", "b")))


def sales_query():
    return agg(
        (),
        prod(
            rel("O", "ordk", "custk", "xch"),
            rel("LI", "lordk", "ptk", "price"),
            cmp("ordk", "=", "lordk"),
            val(vmul("xch", "price")),
        ),
    )


def test_example1_view_state_table():
    """Reproduce the exact sequence of Q values from Example 1."""
    program = compile_query(count_query(), COUNT_SCHEMAS, name="Q")
    engine = IncrementalEngine(program)
    # Initial state: ||R|| = 2, ||S|| = 3  ->  Q = 6.
    for value in (1, 2):
        engine.apply(insert("R", value))
    for value in (1, 2, 3):
        engine.apply(insert("S", value))
    observed = [engine.scalar_result("Q")]
    for relation, value in (("S", 4), ("R", 3), ("S", 5), ("S", 6)):
        engine.apply(insert(relation, value))
        observed.append(engine.scalar_result("Q"))
    assert observed == [6, 8, 12, 15, 18]


def test_example1_first_order_views_track_counts():
    program = compile_query(count_query(), COUNT_SCHEMAS, name="Q")
    engine = IncrementalEngine(program)
    for value in (1, 2):
        engine.apply(insert("R", value))
    for value in (1, 2, 3):
        engine.apply(insert("S", value))
    # The auxiliary first-order views are count(S) and count(R).
    auxiliary_values = sorted(
        engine.view(name).total_multiplicity()
        for name in program.maps
        if name != "Q"
    )
    assert auxiliary_values == [2, 3]


def test_example2_trigger_shapes():
    """The compiled triggers match the paper: Q += xch * QO[ordk]; QLI[ordk] += xch."""
    program = compile_query(sales_query(), SALES_SCHEMAS, name="Q")
    assert program.map_count() == 3
    for relation in ("O", "LI"):
        statements = program.trigger_for(1, relation).statements
        assert len(statements) == 2
        assert all(s.operation == INCREMENT for s in statements)
        assert all(not s.loop_keys() for s in statements)
        targets = {s.target for s in statements}
        assert "Q" in targets


def test_example2_delete_triggers_are_negated_inserts():
    program = compile_query(sales_query(), SALES_SCHEMAS, name="Q")
    engine = IncrementalEngine(program)
    events = [
        insert("O", 1, 7, 2.0),
        insert("LI", 1, 100, 5.0),
        insert("LI", 1, 101, 7.0),
        insert("O", 2, 8, 3.0),
        insert("LI", 2, 102, 11.0),
    ]
    for event in events:
        engine.apply(event)
    assert engine.scalar_result("Q") == 2.0 * (5.0 + 7.0) + 3.0 * 11.0
    # Deleting everything in reverse order returns the view to zero.
    for event in reversed(events):
        engine.apply(event.inverted())
    assert engine.scalar_result("Q") == 0


def test_example8_naive_viewlet_transform_materializes_full_deltas():
    program = viewlet_transform(count_query(), COUNT_SCHEMAS, name="Q")
    # Q plus the two first-order deltas (the second-order delta is constant).
    assert program.map_count() == 3
    statements = program.trigger_for(1, "R").statements
    assert statements[0].target == "Q"  # old views are read before being refreshed


def test_viewlet_and_hoivm_agree_on_results():
    events = [insert("R", v) for v in range(4)] + [insert("S", v) for v in range(3)]
    naive = IncrementalEngine(viewlet_transform(count_query(), COUNT_SCHEMAS, name="Q"))
    smart = IncrementalEngine(compile_query(count_query(), COUNT_SCHEMAS, name="Q"))
    for event in events:
        naive.apply(event)
        smart.apply(event)
    assert naive.scalar_result("Q") == smart.scalar_result("Q") == 12
