"""Tests for the trigger-program intermediate representation."""

import pytest

from repro.agca.builders import agg, mapref, prod, rel, val
from repro.compiler.program import (
    ASSIGN,
    INCREMENT,
    MapDeclaration,
    Statement,
    Trigger,
    TriggerProgram,
    order_statements,
)
from repro.delta.events import INSERT, TriggerEvent


def _event(relation="R", columns=("a",), trigger_vars=("r_a",)):
    return TriggerEvent(relation, INSERT, columns, trigger_vars)


def _statement(target, degree, operation=INCREMENT, expr=None, keys=()):
    return Statement(
        target=target,
        target_keys=tuple(keys),
        operation=operation,
        expr=expr if expr is not None else val("r_a"),
        event=_event(),
        target_degree=degree,
    )


def test_map_declaration_degree_and_pretty():
    decl = MapDeclaration("Q", ("b",), agg(("b",), prod(rel("R", "a", "b"), rel("S", "b"))))
    assert decl.degree == 2
    assert decl.pretty().startswith("Q[b] := Sum[b]")


def test_statement_reads_and_loop_keys():
    stmt = Statement(
        target="Q",
        target_keys=("r_a", "b"),
        operation=INCREMENT,
        expr=prod(mapref("M1", "b"), val("r_a")),
        event=_event(),
        target_degree=2,
    )
    assert stmt.reads_maps() == {"M1"}
    assert stmt.reads_relations() == frozenset()
    assert stmt.loop_keys() == ("b",)
    assert "foreach b:" in stmt.pretty()


def test_trigger_name_and_pretty():
    trigger = Trigger("Lineitem", INSERT, [_statement("Q", 1)])
    assert trigger.name == "insert_lineitem"
    assert "on insert into Lineitem" in trigger.pretty()
    empty = Trigger("R", -1)
    assert "(no-op)" in empty.pretty()


def test_order_statements_parents_before_children_for_increments():
    child = _statement("M_child", degree=1)
    parent = _statement("Q", degree=3)
    middle = _statement("M_mid", degree=2)
    ordered = order_statements([child, parent, middle])
    assert [s.target for s in ordered] == ["Q", "M_mid", "M_child"]


def test_order_statements_assigns_run_last_in_ascending_degree():
    inc = _statement("M_child", degree=1)
    assign_hi = _statement("Q", degree=3, operation=ASSIGN)
    assign_lo = _statement("M_mid", degree=2, operation=ASSIGN)
    ordered = order_statements([assign_hi, inc, assign_lo])
    assert [s.target for s in ordered] == ["M_child", "M_mid", "Q"]


def _tiny_program():
    root = MapDeclaration("Q", (), agg((), prod(rel("R", "a"), rel("S", "b"))))
    aux = MapDeclaration("M1", (), agg((), rel("S", "b")), level=1)
    trig = Trigger("R", INSERT, [_statement("Q", 2, expr=mapref("M1"))])
    return TriggerProgram(
        roots={"Q": "Q"},
        maps={"Q": root, "M1": aux},
        triggers={trig.name: trig},
        schemas={"R": ("a",), "S": ("b",)},
        stream_relations=("R", "S"),
    )


def test_program_root_map_and_trigger_lookup():
    program = _tiny_program()
    assert program.root_map().name == "Q"
    assert program.root_map("Q").name == "Q"
    assert program.trigger_for(INSERT, "R") is not None
    assert program.trigger_for(-1, "R") is None


def test_program_root_map_ambiguity():
    program = _tiny_program()
    program.roots["Q2"] = "M1"
    with pytest.raises(KeyError):
        program.root_map()


def test_program_statistics_and_requirements():
    program = _tiny_program()
    assert program.map_count() == 2
    assert program.statement_count() == 1
    assert program.requires_base_relations() == frozenset()
    summary = program.summary()
    assert summary["maps"] == 2 and summary["statements"] == 1


def test_program_requires_base_relations_when_statement_reads_them():
    program = _tiny_program()
    program.triggers["insert_r"].statements.append(_statement("Q", 2, expr=rel("S", "b")))
    assert program.requires_base_relations() == {"S"}


def test_program_pretty_lists_maps_and_triggers():
    text = _tiny_program().pretty()
    assert "-- materialized views --" in text
    assert "on insert into R" in text
