"""Codegen: per-event throughput of compiled versus interpreted triggers.

The benchmark behind the ``python -m repro.bench codegen`` sweep: replay the
same agenda through the interpreted ``dbtoaster`` engine and through
``dbtoaster-comp`` (:mod:`repro.codegen`).  On the linear TPC-H views
(Q1/Q6-class, fully compiled — no interpreter fallback) the compiled engine
must hold at least ~3x the per-event refresh rate; join views (Q3) compile
fully as well and show similar gains.  Queries dominated by interpreter
fallbacks (VWAP's ``:=`` re-evaluation) are included to pin that codegen
never *loses* meaningfully there.
"""

import pytest

from conftest import prepared_run, replay

EVENTS = 1500

CASES = [
    ("Q1", "dbtoaster"),
    ("Q1", "dbtoaster-comp"),
    ("Q3", "dbtoaster"),
    ("Q3", "dbtoaster-comp"),
    ("Q6", "dbtoaster"),
    ("Q6", "dbtoaster-comp"),
    ("VWAP", "dbtoaster"),
    ("VWAP", "dbtoaster-comp"),
]


@pytest.mark.parametrize("query,strategy", CASES)
def test_codegen_throughput(benchmark, query, strategy):
    build, stream = prepared_run(query, strategy, EVENTS)

    def target():
        return replay(build(), stream)

    processed = benchmark.pedantic(target, rounds=1, iterations=1)
    benchmark.extra_info.update(query=query, strategy=strategy, events=processed)
    assert processed == EVENTS


def test_codegen_speedup_on_linear_views():
    """Direct head-to-head: compiled must beat interpreted by >= 3x on Q1."""
    import time

    rates = {}
    for strategy in ("dbtoaster", "dbtoaster-comp"):
        build, stream = prepared_run("Q1", strategy, EVENTS)
        engine = build()
        start = time.perf_counter()
        replay(engine, stream)
        rates[strategy] = EVENTS / (time.perf_counter() - start)
    assert rates["dbtoaster-comp"] >= 3.0 * rates["dbtoaster"], rates
