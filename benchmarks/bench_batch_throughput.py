"""Scale-out: throughput of batched and partitioned execution.

The benchmark behind the `python -m repro.bench batch` sweep: replay the same
TPC-H agenda through the per-event engine and through delta-batched execution
at growing batch sizes.  The expected shape is monotone improvement with the
batch size on linear views (Q1/Q6), flattening once per-batch overhead is
amortized; batched execution at size >= 100 should sustain at least ~2x the
per-event refresh rate.  The partitioned case exercises routing plus
merge-on-read on the co-partitioned Orders/Lineitem scheme.
"""

import pytest

from conftest import prepared_run, replay

EVENTS = 1500

BATCH_CASES = [
    ("Q1", 1),
    ("Q1", 10),
    ("Q1", 100),
    ("Q6", 100),
    ("Q3", 100),
]


@pytest.mark.parametrize("query,batch_size", BATCH_CASES)
def test_batched_throughput(benchmark, query, batch_size):
    build, stream = prepared_run(query, "dbtoaster-batch", EVENTS, batch_size=batch_size)

    def target():
        return replay(build(), stream)

    processed = benchmark.pedantic(target, rounds=1, iterations=1)
    benchmark.extra_info.update(
        query=query, strategy="dbtoaster-batch", batch_size=batch_size, events=processed
    )
    assert processed == EVENTS


@pytest.mark.parametrize("query,partitions", [("Q1", 2), ("Q1", 4), ("Q3", 4)])
def test_partitioned_throughput(benchmark, query, partitions):
    build, stream = prepared_run(
        query, "dbtoaster-par", EVENTS, partitions=partitions, batch_size=100
    )

    def target():
        engine = build()
        try:
            return replay(engine, stream)
        finally:
            engine.close()

    processed = benchmark.pedantic(target, rounds=1, iterations=1)
    benchmark.extra_info.update(
        query=query, strategy="dbtoaster-par", partitions=partitions, events=processed
    )
    assert processed == EVENTS
