"""Shared fixtures and helpers for the paper-reproduction benchmarks.

Every benchmark replays a pre-built update stream against a pre-compiled
engine; the pytest-benchmark timer therefore measures exactly the view
refresh work (not data generation or compilation).  Stream sizes are chosen
so the full suite runs in a few minutes on one laptop core; EXPERIMENTS.md
records results from larger standalone runs of the same scenarios.
"""

import sys
from pathlib import Path

import pytest

SRC = Path(__file__).parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.bench.strategies import build_engine  # noqa: E402
from repro.workloads import workload  # noqa: E402


def prepared_run(query_name: str, strategy: str, events: int, seed: int = 7, **config):
    """Build (engine factory, agenda, static tables) for one benchmark case."""
    spec = workload(query_name)
    translated = spec.query_factory()
    agenda = spec.stream_factory(events=events, seed=seed)
    static = spec.static_tables(seed=seed) if spec.static_factory else {}

    def build():
        engine = build_engine(strategy, translated, **config)
        for relation, rows in static.items():
            engine.load_static(relation, rows)
        return engine

    return build, list(agenda)


def replay(engine, events) -> int:
    """Apply every event; returns the number processed (the benchmark payload)."""
    for event in events:
        engine.apply(event)
    if hasattr(engine, "flush"):
        engine.flush()
    return len(events)


@pytest.fixture()
def run_stream(benchmark):
    """Benchmark fixture: time one full replay of a stream for one strategy."""

    def runner(query_name: str, strategy: str, events: int):
        build, stream = prepared_run(query_name, strategy, events)

        def target():
            engine = build()
            return replay(engine, stream)

        processed = benchmark.pedantic(target, rounds=1, iterations=1)
        benchmark.extra_info["query"] = query_name
        benchmark.extra_info["strategy"] = strategy
        benchmark.extra_info["events"] = processed
        benchmark.extra_info["refreshes_per_second"] = (
            processed / benchmark.stats.stats.mean if benchmark.stats.stats.mean else 0.0
        )
        return processed

    return runner
