"""Figures 6 and 7: average view refresh rates per query and strategy.

The paper's headline experiment: for every workload query, the average number
of complete view refreshes per second sustained by DBToaster (HO-IVM) versus
the naive viewlet transform, classical first-order IVM, full re-evaluation,
and the commercial-system stand-ins.  Each benchmark case below replays the
same pre-generated stream through one (query, strategy) pair; the expected
*shape* is

* DBToaster >= IVM >= REP on join/nested queries, usually by large factors,
* near parity of the incremental strategies on single-relation queries
  (Q1/Q6), as in the paper,
* the nested-loop reference engine (DBX/SPY stand-in) orders of magnitude
  slower still (exercised with a tiny stream so the suite stays fast).
"""

import pytest

#: Query x strategy grid (a representative subset of the paper's Figure 7 rows;
#: the full table is produced by repro.bench.scenarios.run_refresh_rate_table).
GRID_QUERIES = ("Q1", "Q3", "Q6", "Q11a", "Q12", "Q18a", "AXF", "BSV", "VWAP", "PSP", "MDDB1")
STRATEGIES = ("dbtoaster", "ivm", "rep")
EVENTS = 800


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("query", GRID_QUERIES)
def test_refresh_rate(run_stream, query, strategy):
    processed = run_stream(query, strategy, EVENTS)
    assert processed == EVENTS


@pytest.mark.parametrize("query", ("Q3", "Q12"))
def test_naive_viewlet_transform(run_stream, query):
    """The 'Naive' column: aggressive materialization without decomposition."""
    processed = run_stream(query, "naive", 400)
    assert processed == 400


@pytest.mark.parametrize("query", ("Q3", "Q6"))
def test_reference_engine_standin(run_stream, query):
    """The DBX-REP / SPY stand-in on a deliberately tiny stream."""
    processed = run_stream(query, "dbx-rep", 60)
    assert processed == 60
