"""Ablations: the contribution of each compiler heuristic (Section 5.1/5.3).

The paper motivates each materialization heuristic qualitatively (and via the
"Naive" column of Figure 7); these benchmarks quantify them individually by
switching one heuristic off at a time and replaying the same stream:

* query decomposition (rule 1) — dominant for multi-way joins (Q3, Q10),
* range-restriction extraction — turns foreach-loops into point updates,
* factorization — smaller statement bodies,
* duplicate view elimination — fewer maps to maintain,
* nested-aggregate strategy — incremental vs re-evaluation (Q18a, Q22a, PSP).
"""

import pytest

from repro.bench.harness import measure_refresh_rate
from repro.bench.strategies import custom_options_engine
from repro.workloads import workload

VARIANTS = {
    "full": {},
    "no-decomposition": {"decomposition": False},
    "no-range-extraction": {"extract_ranges": False},
    "no-factorization": {"factorization": False},
    "no-dedup": {"dedup": False},
}

NESTED_VARIANTS = {
    "nested-auto": {},
    "nested-incremental": {"nested_strategy": "incremental"},
    "nested-reeval": {"nested_strategy": "reeval"},
}


def _measure(query_name: str, overrides: dict, events: int):
    spec = workload(query_name)
    translated = spec.query_factory()
    agenda = spec.stream_factory(events=events, seed=7)
    static = spec.static_tables(seed=7) if spec.static_factory else {}
    engine = custom_options_engine(translated, overrides)
    return measure_refresh_rate(
        engine, agenda, static, max_seconds=30.0, query=query_name
    )


@pytest.mark.parametrize("variant", sorted(VARIANTS))
@pytest.mark.parametrize("query", ("Q3", "Q12"))
def test_heuristic_ablation(benchmark, query, variant):
    result = benchmark.pedantic(
        _measure, args=(query, VARIANTS[variant], 500), rounds=1, iterations=1
    )
    benchmark.extra_info["query"] = query
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["refreshes_per_second"] = result.refresh_rate
    assert result.events_processed > 0


@pytest.mark.parametrize("variant", sorted(NESTED_VARIANTS))
@pytest.mark.parametrize("query", ("Q18a", "Q22a"))
def test_nested_aggregate_strategy(benchmark, query, variant):
    result = benchmark.pedantic(
        _measure, args=(query, NESTED_VARIANTS[variant], 400), rounds=1, iterations=1
    )
    benchmark.extra_info["query"] = query
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["refreshes_per_second"] = result.refresh_rate
    assert result.events_processed > 0
