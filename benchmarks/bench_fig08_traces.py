"""Figures 8-10 (and 13-18): per-query traces of time, refresh rate and memory.

The paper plots, for selected queries, the cumulative processing time, the
instantaneous refresh rate and the memory footprint against the fraction of
the stream processed, for DBToaster and the IVM baseline.  The benchmarks
below time the full trace replay and additionally check the structural
properties the paper highlights:

* queries with a bounded working set (finance, bounded Orders/Lineitem) keep
  their memory roughly flat,
* insert-only queries grow their auxiliary state monotonically,
* DBToaster's cumulative time grows roughly linearly in the stream length.
"""

import pytest

from repro.bench.scenarios import run_trace_figure
from repro.bench.report import format_trace

TRACE_QUERIES = ("Q1", "Q3", "Q17a", "AXF", "PSP", "VWAP")


@pytest.mark.parametrize("query", TRACE_QUERIES)
def test_trace_dbtoaster(benchmark, query):
    events = 600 if query not in ("PSP", "MST") else 250

    def run():
        return run_trace_figure(
            query, strategies=("dbtoaster",), events=events, samples=10,
            max_seconds_per_run=30.0,
        )["dbtoaster"]

    trace = benchmark.pedantic(run, rounds=1, iterations=1)
    assert trace.completed
    assert len(trace.points) >= 5
    benchmark.extra_info["query"] = query
    benchmark.extra_info["final_memory_kb"] = trace.points[-1].memory_bytes / 1024
    benchmark.extra_info["total_seconds"] = trace.total_seconds

    # Cumulative time must be (weakly) increasing and memory non-negative.
    times = [p.cumulative_seconds for p in trace.points]
    assert times == sorted(times)
    assert all(p.memory_bytes >= 0 for p in trace.points)
    print()
    print(format_trace(trace))


def test_trace_dbtoaster_vs_ivm_on_q3(benchmark):
    """DBToaster should not be slower than first-order IVM on a 3-way join trace."""

    def run():
        return run_trace_figure(
            "Q3", strategies=("dbtoaster", "ivm"), events=600, samples=8,
            max_seconds_per_run=30.0,
        )

    traces = benchmark.pedantic(run, rounds=1, iterations=1)
    assert traces["dbtoaster"].completed
    benchmark.extra_info["dbtoaster_seconds"] = traces["dbtoaster"].total_seconds
    benchmark.extra_info["ivm_seconds"] = traces["ivm"].total_seconds
