"""Figure 11: refresh-rate scaling as the stream (scale factor) grows.

The paper scales the TPC-H database from 100 MB to 10 GB while keeping the
Orders/Lineitem working set bounded, and reports each query's refresh rate
relative to the smallest scale factor.  Queries whose views only depend on
the bounded working set stay roughly flat; queries selecting over insert-only
relations degrade as their views grow.  The benchmark reproduces the scaled
streams at laptop size and records the relative rates.
"""

import pytest

from repro.bench.harness import measure_refresh_rate
from repro.bench.strategies import build_engine
from repro.workloads import workload

SCALES = (0.5, 1.0, 2.0)
SCALING_QUERIES = ("Q1", "Q3", "Q6", "Q11a", "Q18a")
EVENTS_PER_SCALE_UNIT = 700


def _run_at_scale(query_name: str, scale: float):
    spec = workload(query_name)
    translated = spec.query_factory()
    events = int(EVENTS_PER_SCALE_UNIT * scale)
    agenda = spec.stream_factory(events=events, scale=scale, seed=7)
    static = spec.static_tables(scale=scale, seed=7)
    engine = build_engine("dbtoaster", translated)
    return measure_refresh_rate(
        engine, agenda, static, strategy="dbtoaster", query=query_name
    )


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("query", SCALING_QUERIES)
def test_scaling(benchmark, query, scale):
    result = benchmark.pedantic(_run_at_scale, args=(query, scale), rounds=1, iterations=1)
    assert result.completed
    benchmark.extra_info["query"] = query
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["refreshes_per_second"] = result.refresh_rate
    benchmark.extra_info["events"] = result.events_processed
