"""Figure 2: workload features and the rewrites/maps the compiler produces.

The paper's Figure 2 is a static feature matrix (tables, join types,
where-clause shape, nesting, which rewrite rules apply).  Here the same table
is regenerated from the query registry plus the *actual* compiled program
statistics (number of maps, statements, re-evaluation statements), and the
benchmark measures compilation time per query family — the cost of the
toolchain itself.
"""

import pytest

from repro.bench.scenarios import workload_feature_table
from repro.bench.report import format_feature_table
from repro.compiler.hoivm import compile_query
from repro.workloads import all_workloads, workload

FAMILY_REPRESENTATIVES = {
    "finance": ("VWAP", "MST", "AXF"),
    "tpch": ("Q3", "Q18a", "SSB4"),
    "mddb": ("MDDB1", "MDDB2"),
}


@pytest.mark.parametrize("family", sorted(FAMILY_REPRESENTATIVES))
def test_compilation_time_per_family(benchmark, family):
    """Time HO-IVM compilation of the family's representative queries."""
    translated = [workload(name).query_factory() for name in FAMILY_REPRESENTATIVES[family]]

    def compile_all():
        programs = [
            compile_query(t.roots(), t.schemas(), static_relations=t.static_relations())
            for t in translated
        ]
        return sum(p.map_count() for p in programs)

    total_maps = benchmark(compile_all)
    benchmark.extra_info["family"] = family
    benchmark.extra_info["total_maps"] = total_maps
    assert total_maps > 0


def test_feature_table_covers_every_workload_query(benchmark):
    """Regenerate the Figure 2 table for the full workload and print it."""
    table = benchmark.pedantic(workload_feature_table, rounds=1, iterations=1)
    assert set(table) == set(all_workloads())
    for row in table.values():
        assert row["maps"] >= 1 and row["statements"] >= 1
    print()
    print(format_feature_table(table))
