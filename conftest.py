"""Pytest bootstrap: make the in-tree sources importable without installation."""

import sys
from pathlib import Path

SRC = Path(__file__).parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
