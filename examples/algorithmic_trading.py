"""Algorithmic trading: monitor order-book analytics at high refresh rates.

The paper's motivating application (Section 1) is algorithmic trading:
strategies want SQL analytics over the full order book — not a window — kept
fresh on every update.  This example maintains two of the paper's financial
queries simultaneously over a synthetic order-book stream:

* VWAP  — volume-weighted average price of the top quartile of the bid book,
* AXF   — the "axis finder": bid/ask volume imbalance per broker for orders
          whose prices have drifted far apart.

It also shows the embedding pattern the paper describes for shared-library
use: the application inspects the continuously maintained views after every
batch of events and reacts to signal changes.

Run with:  python examples/algorithmic_trading.py
"""

from __future__ import annotations

from repro import IncrementalEngine, compile_query
from repro.sql import QueryView
from repro.workloads.finance import OrderBookGenerator, finance_query


def build_engine(query_name: str) -> tuple[IncrementalEngine, QueryView]:
    """Compile one financial query and wrap it in a SQL-shaped view reader."""
    translated = finance_query(query_name)
    program = compile_query(translated.roots(), translated.schemas())
    engine = IncrementalEngine(program)
    return engine, QueryView(translated, engine)


def main() -> None:
    vwap_engine, vwap_view = build_engine("VWAP")
    axf_engine, axf_view = build_engine("AXF")

    generator = OrderBookGenerator(seed=2024, brokers=5, delete_fraction=0.2)
    stream = generator.agenda(3000)

    print(f"replaying {len(stream)} order-book updates "
          f"({stream.counts()['Bids']['insert']} bid inserts, "
          f"{stream.counts()['Bids']['delete']} bid cancellations)")
    print()
    print(f"{'events':>8} {'VWAP':>14} {'brokers with AXF signal':>26}")

    checkpoint = len(stream) // 10
    for index, event in enumerate(stream, start=1):
        vwap_engine.apply(event)
        axf_engine.apply(event)
        if index % checkpoint == 0:
            vwap = vwap_view.scalar("vwap")
            signals = {row["broker_id"]: row["axfinder"] for row in axf_view.rows()}
            active = {broker: value for broker, value in signals.items() if value != 0}
            print(f"{index:>8} {vwap:>14,.1f} {len(active):>26}")

    print()
    print("final per-broker AXF signal:")
    for row in sorted(axf_view.rows(), key=lambda r: r["broker_id"]):
        print(f"  broker {row['broker_id']}: {row['axfinder']:>12,.1f}")
    print()
    print(f"VWAP engine processed {vwap_engine.events_processed} events; "
          f"view state: {sum(vwap_engine.map_sizes().values())} map entries, "
          f"{vwap_engine.memory_bytes() / 1024:.1f} KB")


if __name__ == "__main__":
    main()
