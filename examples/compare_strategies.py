"""Compare view-maintenance strategies on one query (a miniature Figure 6).

Picks a query from the workload registry, replays the same update stream
through every strategy the paper evaluates (DBToaster's HO-IVM, the naive
viewlet transform, classical first-order IVM, full re-evaluation, and the
nested-loop reference engine standing in for the commercial systems), checks
that they all agree, and prints the measured refresh rates side by side.

Run with:  python examples/compare_strategies.py [query-name] [events]
"""

from __future__ import annotations

import sys

from repro.bench.harness import measure_refresh_rate
from repro.bench.report import format_refresh_rate_table, format_speedup_summary
from repro.bench.strategies import build_engine
from repro.workloads import all_workloads, workload

STRATEGIES = ("dbtoaster", "naive", "ivm", "rep", "dbx-rep")


def main() -> None:
    query_name = sys.argv[1] if len(sys.argv) > 1 else "Q3"
    events = int(sys.argv[2]) if len(sys.argv) > 2 else 1200
    if query_name not in all_workloads():
        raise SystemExit(f"unknown query {query_name!r}; choose one of {sorted(all_workloads())}")

    spec = workload(query_name)
    translated = spec.query_factory()
    agenda = spec.stream_factory(events=events)
    static = spec.static_tables()
    print(f"query {query_name} ({spec.family}); stream of {len(agenda)} events\n")

    results = {query_name: {}}
    views = {}
    for strategy in STRATEGIES:
        engine = build_engine(strategy, translated)
        run = measure_refresh_rate(
            engine, agenda, static, max_seconds=10.0, strategy=strategy, query=query_name
        )
        results[query_name][strategy] = run
        views[strategy] = {name: engine.view(name) for name in translated.roots()}
        flag = "" if run.completed else f"  (timed out after {run.events_processed} events)"
        print(f"  {strategy:10s} {run.refresh_rate:>12,.1f} refreshes/s{flag}")

    # Strategies that processed the full stream must agree exactly.
    complete = [s for s in STRATEGIES if results[query_name][s].completed]
    baseline = views[complete[0]]
    for strategy in complete[1:]:
        for root, expected in baseline.items():
            assert views[strategy][root] == expected or _close(views[strategy][root], expected), (
                f"{strategy} disagrees on {root}"
            )
    print(f"\nall {len(complete)} strategies that finished the stream agree on the result\n")

    print(format_refresh_rate_table(results, STRATEGIES))
    print()
    print(format_speedup_summary(results, baseline="rep"))


def _close(left, right) -> bool:
    keys = {row for row, _ in left.items()} | {row for row, _ in right.items()}
    for key in keys:
        a, b = left[key], right[key]
        if isinstance(a, str) or isinstance(b, str):
            if a != b:
                return False
        elif abs(a - b) > 1e-6 * max(1.0, abs(a), abs(b)):
            return False
    return True


if __name__ == "__main__":
    main()
