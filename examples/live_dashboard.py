"""A live TPC-H dashboard served over the wire.

The serving-layer counterpart of ``tpch_dashboard.py``: instead of driving
engines from the same process, this example compiles Q1 and Q3 into one
trigger program, hosts it in a :class:`repro.service.ViewService` behind the
JSONL TCP server, and then acts as two independent clients:

* an **ingest client** streams TPC-H order/lineitem updates in batches;
* a **dashboard client** subscribes to Q3's revenue deltas and periodically
  reads version-tagged snapshots of both views.

At the end the service checkpoints itself, a second service restores from
the checkpoint, and the example verifies the restored views match — the full
serve / subscribe / checkpoint / restore loop in one script.

With ``--telemetry`` the server runs with the metrics registry on and the
dashboard scrapes the ``metrics`` operation; with ``--provenance-depth N``
row provenance is recorded and the dashboard replays the mutation history of
the top revenue order through ``explain-row``.  The ``explain`` operation
(physical design joined with observed counters) is exercised either way.

Run with:  python examples/live_dashboard.py [events] [--telemetry]
               [--provenance-depth 32]
"""

from __future__ import annotations

import argparse
import tempfile

from repro.compiler.hoivm import compile_query
from repro.service import ServiceClient, ViewService, engine_for_mode, start_in_thread
from repro.workloads.tpch import tpch_query, tpch_stream
from repro.workloads.tpch.stream import static_tables

QUERIES = ("Q1", "Q3")
BATCH_SIZE = 64


def build_program():
    """Q1 and Q3 compiled into one multi-root trigger program."""
    roots: dict = {}
    schemas: dict = {}
    statics: set = set()
    for name in QUERIES:
        translated = tpch_query(name)
        roots.update(translated.roots())
        schemas.update(translated.schemas())
        statics.update(translated.static_relations())
    return compile_query(roots, schemas, static_relations=sorted(statics))


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("events", nargs="?", type=int, default=2000,
                        help="stream events to ingest")
    parser.add_argument("--telemetry", action="store_true",
                        help="serve with the metrics registry on and scrape it")
    parser.add_argument("--provenance-depth", type=int, default=None,
                        help="record row provenance and explain the top order")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    stream = list(tpch_stream(events=args.events, scale=1.0, seed=7))
    program = build_program()
    checkpoint_dir = tempfile.mkdtemp(prefix="live-dashboard-")

    telemetry = None
    if args.telemetry:
        from repro.telemetry import Telemetry

        telemetry = Telemetry(enabled=True)
    service = ViewService(
        engine_for_mode(program, "batched", batch_size=BATCH_SIZE, telemetry=telemetry),
        checkpoint_dir=checkpoint_dir,
        telemetry=telemetry,
    )
    for relation, rows in static_tables(scale=1.0, seed=7).items():
        if relation in program.static_relations:
            service.load_static(relation, rows)
    if args.provenance_depth is not None:
        service.enable_provenance(depth=args.provenance_depth)

    handle = start_in_thread(service)
    print(f"serving {sorted(program.roots)[:3]}... on {handle.host}:{handle.port}")

    subscriber = ServiceClient(*handle.address)
    deltas = subscriber.subscribe("Q3_revenue")

    published = 0
    with ServiceClient(*handle.address) as ingestor:
        for start in range(0, len(stream), 250):
            result = ingestor.ingest(stream[start:start + 250])
            published += result.notifications
            snapshot = ingestor.query("Q3_revenue")
            print(f"version {result.version:5d}: Q3 serves {len(snapshot.entries):3d} "
                  f"open orders ({result.notifications} deltas published)")
        q1 = ingestor.query("Q1_sum_qty")
        q3 = ingestor.query("Q3_revenue")

        # Physical-design explain: planned probe shapes joined with the
        # probe/scan counters this very server accumulated.
        report = ingestor.explain()
        summary = report["plan"]["summary"]
        print(f"\nexplain ({report['schema']}): "
              f"{summary['compiled_statements']} statements compiled, "
              f"{summary['fused_kernels']} fused kernels, "
              f"{summary['fallback_statements']} fallbacks; "
              f"observed events={report['observed']['events_processed']}")

        if args.telemetry:
            scraped = ingestor.metrics()
            processed = scraped["metrics"].get("repro_engine_events_processed_total", {})
            series = processed.get("series") or [{}]
            print(f"metrics ({scraped['schema']}): telemetry enabled, "
                  f"{len(scraped['metrics'])} metric families, "
                  f"engine events processed = {series[0].get('value', 'n/a')}")

        if args.provenance_depth is not None and q3.entries:
            top_key = max(q3.entries, key=lambda k: q3.entries[k])
            history = ingestor.explain_row("Q3_revenue", list(top_key))
            print(f"provenance of top order {top_key[1]} "
                  f"({len(history['history'])} recent mutations, "
                  f"current {history['current']:,.2f}):")
            for entry in history["history"][-3:]:
                cause = entry["cause"] or {}
                print(f"  v{entry['version']}: {entry['old']!r} -> "
                      f"{entry['new']!r} <- {cause.get('kind')} "
                      f"{cause.get('relation', '')}")

        version, path = ingestor.checkpoint()

    received = deltas.take(published)
    assert len(received) == published, "subscriber lost deltas"
    print(f"subscriber received all {len(received)} Q3 deltas in order")
    subscriber.close()
    handle.stop()
    service.close()

    print(f"\nQ1 pricing summary at version {q1.version}:")
    for key, value in sorted(q1.entries.items()):
        print(f"  {'/'.join(map(str, key))}: sum_qty={value:,.0f}")
    top = sorted(q3.entries.items(), key=lambda kv: -kv[1])[:5]
    print(f"\nQ3 top open orders by revenue at version {q3.version}:")
    for key, value in top:
        print(f"  order {key[1]}: revenue {value:,.2f}")

    # Restart from the checkpoint and verify the views converge bit-identically.
    restored = ViewService(
        engine_for_mode(program, "batched", batch_size=BATCH_SIZE),
        checkpoint_dir=checkpoint_dir,
    )
    assert restored.restore() == version
    restored.replay(stream)
    assert restored.query("Q1_sum_qty").entries == q1.entries
    assert restored.query("Q3_revenue").entries == q3.entries
    restored.close()
    print(f"\ncheckpoint at version {version} restored and replayed: views identical")


if __name__ == "__main__":
    main()
