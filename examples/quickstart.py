"""Quickstart: keep a SQL view continuously fresh under a stream of updates.

This walks through the paper's running example (Example 2): the total sales
across all orders weighted by currency exchange rates,

    SELECT SUM(li.price * o.xch) FROM Orders o, Lineitem li
    WHERE o.ordk = li.ordk

maintained incrementally while orders and line items are inserted and
deleted.  Run it with:

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import IncrementalEngine, compile_query, insert, delete
from repro.sql import Catalog, parse_sql_query


def main() -> None:
    # 1. Describe the schema: two stream tables.
    catalog = Catalog.from_dict(
        {
            "Orders": ("ordk", "custk", "xch"),
            "Lineitem": ("ordk", "ptk", "price"),
        }
    )

    # 2. Parse the SQL view definition and translate it to AGCA.
    query = parse_sql_query(
        """
        SELECT SUM(li.price * o.xch) AS total_sales
        FROM Orders o, Lineitem li
        WHERE o.ordk = li.ordk
        """,
        catalog,
        name="Sales",
    )

    # 3. Compile it with Higher-Order IVM into a trigger program ...
    program = compile_query(query.roots(), query.schemas())
    print("compiled trigger program")
    print("------------------------")
    print(program.pretty())
    print()

    # 4. ... and run it: every apply() refreshes the view in constant time.
    engine = IncrementalEngine(program)
    updates = [
        insert("Orders", 1, 100, 2.0),     # order 1, exchange rate 2.0
        insert("Lineitem", 1, 500, 10.0),  # 10.0 * 2.0 = 20
        insert("Lineitem", 1, 501, 5.0),   # +5.0 * 2.0 = 10
        insert("Orders", 2, 101, 1.5),
        insert("Lineitem", 2, 502, 40.0),  # +40.0 * 1.5 = 60
        delete("Lineitem", 1, 501, 5.0),   # -10
    ]
    print("replaying updates")
    print("-----------------")
    for event in updates:
        engine.apply(event)
        print(f"{event!r:45s} -> total_sales = {engine.scalar_result('Sales_total_sales'):g}")

    expected = 10.0 * 2.0 + 40.0 * 1.5
    assert abs(engine.scalar_result("Sales_total_sales") - expected) < 1e-9
    print()
    print(f"final view value: {engine.scalar_result('Sales_total_sales'):g} (expected {expected:g})")
    print(f"materialized views: {engine.map_sizes()}")


if __name__ == "__main__":
    main()
