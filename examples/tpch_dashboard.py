"""Live decision-support dashboard over a TPC-H order stream.

The paper's ETL/decision-support scenario: a system monitors a set of
"active" orders (bounded Orders/Lineitem working set with deletions) while
keeping several analytical views fresh:

* Q3  — shipping-priority revenue per open order,
* Q1  — pricing summary per (returnflag, linestatus), including AVG columns
        reconstructed from sum/count maps (generalized HO-IVM),
* Q18a — customers with large multi-lineitem orders (nested aggregate).

This example also contrasts the compiled strategies: the same dashboard is
maintained with full Higher-Order IVM (per event and delta-batched) and with
classical first-order IVM, and the example reports all refresh rates.

Run with:  python examples/tpch_dashboard.py
"""

from __future__ import annotations

import time

from repro import IncrementalEngine, compile_query
from repro.compiler.materialization import options_for
from repro.exec import BatchedEngine
from repro.sql import QueryView
from repro.workloads.tpch import tpch_query, tpch_stream
from repro.workloads.tpch.stream import static_tables

QUERIES = ("Q3", "Q1", "Q18a")

#: Delta batch size used by the "dbtoaster-batch" dashboard replay.
BATCH_SIZE = 100


def build(query_name: str, preset: str, batch_size: int | None = None):
    translated = tpch_query(query_name)
    program = compile_query(
        translated.roots(),
        translated.schemas(),
        static_relations=translated.static_relations(),
        options=options_for(preset),
    )
    engine = (
        BatchedEngine(program, batch_size) if batch_size else IncrementalEngine(program)
    )
    for relation, rows in static_tables(scale=1.0, seed=7).items():
        if relation in program.static_relations:
            engine.load_static(relation, rows)
    return translated, engine


def replay(label: str, events, preset: str | None = None, batch_size: int | None = None):
    preset = preset or label
    engines = {name: build(name, preset, batch_size) for name in QUERIES}
    start = time.perf_counter()
    for event in events:
        for _, engine in engines.values():
            engine.apply(event)
    for _, engine in engines.values():
        if hasattr(engine, "flush"):
            engine.flush()
    elapsed = time.perf_counter() - start
    rate = len(events) / elapsed if elapsed else 0.0
    print(f"strategy {label:16s}: {len(events)} events in {elapsed:.2f}s "
          f"-> {rate:,.0f} full dashboard refreshes/s")
    return {name: QueryView(translated, engine) for name, (translated, engine) in engines.items()}


def main() -> None:
    stream = tpch_stream(events=4000, scale=1.0, seed=7)
    print(f"update stream: {len(stream)} events over relations {sorted(stream.relations())}")
    print()

    views = replay("dbtoaster", list(stream))
    batched_views = replay(
        "dbtoaster-batch", list(stream), preset="dbtoaster", batch_size=BATCH_SIZE
    )
    replay("ivm", list(stream))
    print()

    # Batched execution must reproduce the per-event dashboard exactly.
    for name in QUERIES:
        per_event = {tuple(sorted(r.items())) for r in views[name].rows()}
        batched = {tuple(sorted(r.items())) for r in batched_views[name].rows()}
        assert batched == per_event, f"batched {name} dashboard diverged"
    print(f"batched (size {BATCH_SIZE}) views identical to per-event views: OK")
    print()

    q3_rows = sorted(views["Q3"].rows(), key=lambda r: -r["revenue"])[:5]
    print("Q3 — top 5 open orders by revenue:")
    for row in q3_rows:
        print(f"  order {row['orderkey']:>6}  {row['orderdate']}  revenue {row['revenue']:>12,.2f}")
    print()

    print("Q1 — pricing summary (per returnflag/linestatus):")
    for row in sorted(views["Q1"].rows(), key=lambda r: (r["returnflag"], r["linestatus"])):
        print(
            f"  {row['returnflag']}/{row['linestatus']}  qty={row['sum_qty']:>8,.0f}  "
            f"avg_price={row['avg_price']:>10,.2f}  orders={row['count_order']:>5}"
        )
    print()

    big_customers = [row for row in views["Q18a"].rows() if row["query18a"] > 0]
    print(f"Q18a — customers with large orders: {len(big_customers)}")


if __name__ == "__main__":
    main()
